"""Unit tests for the bidirectional (activation-prioritised) baseline."""

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.bidirectional import BidirectionalSearch
from repro.core.matching import match_keywords
from repro.errors import QueryError


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


class TestConstruction:
    def test_decay_must_be_fractional(self, data_graph):
        with pytest.raises(QueryError):
            BidirectionalSearch(data_graph, decay=1.5)
        with pytest.raises(QueryError):
            BidirectionalSearch(data_graph, decay=0.0)


class TestEquivalenceWithBanks:
    def test_unbudgeted_run_matches_banks_answer_sets(
        self, data_graph, smith_xml
    ):
        banks = BanksSearch(data_graph).search(smith_xml, top_k=10)
        bidirectional = BidirectionalSearch(data_graph).search(
            smith_xml, top_k=10
        )
        assert [frozenset(a.tuple_ids()) for a in banks] == [
            frozenset(a.tuple_ids()) for a in bidirectional
        ]

    def test_scores_match_banks(self, data_graph, smith_xml):
        banks = BanksSearch(data_graph).search(smith_xml, top_k=10)
        bidirectional = BidirectionalSearch(data_graph).search(
            smith_xml, top_k=10
        )
        for b, d in zip(banks, bidirectional):
            assert b.score == pytest.approx(d.score)


class TestBudget:
    def test_expansions_counted(self, data_graph, smith_xml):
        search = BidirectionalSearch(data_graph)
        search.search(smith_xml, top_k=5)
        assert search.expansions > 0

    def test_budget_limits_expansions(self, data_graph, smith_xml):
        search = BidirectionalSearch(data_graph)
        search.search(smith_xml, top_k=5, expansion_budget=3)
        assert search.expansions <= 3

    def test_budgeted_answers_are_subset(self, data_graph, smith_xml):
        full = {
            frozenset(a.tuple_ids())
            for a in BidirectionalSearch(data_graph).search(smith_xml, top_k=50)
        }
        search = BidirectionalSearch(data_graph)
        budgeted = {
            frozenset(a.tuple_ids())
            for a in search.search(smith_xml, top_k=50, expansion_budget=10)
        }
        assert budgeted <= full


class TestBasics:
    def test_answers_cover_keywords(self, data_graph, smith_xml):
        for answer in BidirectionalSearch(data_graph).search(smith_xml, top_k=5):
            assert answer.covered_keywords == {"XML", "Smith"}

    def test_unmatched_keyword_yields_nothing(self, data_graph, index):
        matches = match_keywords(index, ("XML", "unicorn"))
        assert BidirectionalSearch(data_graph).search(matches) == []

    def test_no_keywords_rejected(self, data_graph):
        with pytest.raises(QueryError):
            BidirectionalSearch(data_graph).search([])

    def test_deterministic(self, data_graph, smith_xml):
        first = [
            a.render()
            for a in BidirectionalSearch(data_graph).search(smith_xml, top_k=5)
        ]
        second = [
            a.render()
            for a in BidirectionalSearch(data_graph).search(smith_xml, top_k=5)
        ]
        assert first == second
