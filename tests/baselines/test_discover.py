"""Unit tests for the DISCOVER baseline (MTJNTs and candidate networks)."""

import pytest

from repro.baselines.discover import (
    candidate_networks,
    find_mtjnts,
    is_mtjnt,
    is_total,
    lost_connections,
)
from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections
from repro.errors import QueryError
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


class TestTotality:
    def test_total_set(self, smith_xml):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")]
        assert is_total(members, smith_xml)

    def test_missing_keyword(self, smith_xml):
        assert not is_total([tid("EMPLOYEE", "e1")], smith_xml)

    def test_empty_set(self, smith_xml):
        assert not is_total([], smith_xml)


class TestIsMtjnt:
    def test_connection1_is_mtjnt(self, data_graph, smith_xml):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")]
        assert is_mtjnt(data_graph, members, smith_xml)

    def test_connection2_is_mtjnt(self, data_graph, smith_xml):
        members = [
            tid("PROJECT", "p1"),
            tid("WORKS_FOR", "e1", "p1"),
            tid("EMPLOYEE", "e1"),
        ]
        assert is_mtjnt(data_graph, members, smith_xml)

    def test_connection3_not_minimal(self, data_graph, smith_xml):
        # p1 - d1 - e1: dropping p1 leaves the total network {d1, e1}.
        members = [tid("PROJECT", "p1"), tid("DEPARTMENT", "d1"),
                   tid("EMPLOYEE", "e1")]
        assert not is_mtjnt(data_graph, members, smith_xml)

    def test_connection7_not_minimal_via_induced_edge(self, data_graph, smith_xml):
        # d2 - p3 - w_f2 - e2: d2 and e2 join directly, so p3 and w_f2 are
        # removable one at a time.
        members = [
            tid("DEPARTMENT", "d2"),
            tid("PROJECT", "p3"),
            tid("WORKS_FOR", "e2", "p3"),
            tid("EMPLOYEE", "e2"),
        ]
        assert not is_mtjnt(data_graph, members, smith_xml)

    def test_disconnected_set_is_not_mtjnt(self, data_graph, smith_xml):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e2")]
        assert not is_mtjnt(data_graph, members, smith_xml)

    def test_non_total_set_is_not_mtjnt(self, data_graph, smith_xml):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e3")]
        assert not is_mtjnt(data_graph, members, smith_xml)

    def test_singleton_covering_all_keywords(self, data_graph, index):
        matches = match_keywords(index, ("XML", "retrieval"))
        assert is_mtjnt(data_graph, [tid("DEPARTMENT", "d2")], matches)

    def test_empty_set(self, data_graph, smith_xml):
        assert not is_mtjnt(data_graph, [], smith_xml)


class TestFindMtjnts:
    def test_paper_example_finds_exactly_three(self, data_graph, smith_xml):
        results = find_mtjnts(data_graph, smith_xml, SearchLimits(max_tuples=5))
        assert len(results) == 3
        expected = [
            frozenset({tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")}),
            frozenset({tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2")}),
            frozenset(
                {
                    tid("PROJECT", "p1"),
                    tid("WORKS_FOR", "e1", "p1"),
                    tid("EMPLOYEE", "e1"),
                }
            ),
        ]
        assert set(results) == set(expected)

    def test_every_result_is_verified_mtjnt(self, data_graph, smith_xml):
        for members in find_mtjnts(data_graph, smith_xml, SearchLimits(max_tuples=5)):
            assert is_mtjnt(data_graph, members, smith_xml)

    def test_sorted_output(self, data_graph, smith_xml):
        results = find_mtjnts(data_graph, smith_xml, SearchLimits(max_tuples=5))
        sizes = [len(members) for members in results]
        assert sizes == sorted(sizes)

    def test_unmatched_keyword_yields_nothing(self, data_graph, index):
        matches = match_keywords(index, ("XML", "unicorn"))
        assert find_mtjnts(data_graph, matches) == []

    def test_no_keywords_rejected(self, data_graph):
        with pytest.raises(QueryError):
            find_mtjnts(data_graph, [])


class TestLostConnections:
    def test_paper_claim(self, data_graph, smith_xml):
        connections = [
            answer
            for answer in find_connections(
                data_graph, smith_xml, SearchLimits(max_rdb_length=3)
            )
            if isinstance(answer, Connection)
        ]
        lost = lost_connections(data_graph, connections, smith_xml)
        lost_rendered = {c.render() for c in lost}
        assert lost_rendered == {
            "p1(XML) – d1(XML) – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "p2(XML) – d2(XML) – e2(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        }


class TestCandidateNetworks:
    @pytest.fixture
    def keyword_relations(self):
        return {
            "smith": frozenset({"EMPLOYEE"}),
            "xml": frozenset({"DEPARTMENT", "PROJECT"}),
        }

    def test_networks_cover_all_keywords(self, schema_graph, keyword_relations):
        networks = candidate_networks(schema_graph, keyword_relations, max_size=3)
        assert networks
        for network in networks:
            assert network.covered_keywords() == {"smith", "xml"}

    def test_smallest_network_is_direct_join(self, schema_graph, keyword_relations):
        networks = candidate_networks(schema_graph, keyword_relations, max_size=3)
        smallest = networks[0]
        relations = {relation for __, relation, __ in smallest.nodes}
        assert smallest.size == 2
        assert relations == {"DEPARTMENT", "EMPLOYEE"}

    def test_no_free_leaves(self, schema_graph, keyword_relations):
        for network in candidate_networks(
            schema_graph, keyword_relations, max_size=4
        ):
            degree = {nid: 0 for nid, __, __ in network.nodes}
            for a, b, __ in network.edges:
                degree[a] += 1
                degree[b] += 1
            for nid, __, keywords in network.nodes:
                if network.size > 1 and degree[nid] <= 1:
                    assert keywords

    def test_size_bound_respected(self, schema_graph, keyword_relations):
        for network in candidate_networks(
            schema_graph, keyword_relations, max_size=3
        ):
            assert network.size <= 3

    def test_single_relation_both_keywords(self, schema_graph):
        keyword_relations = {
            "xml": frozenset({"DEPARTMENT"}),
            "retrieval": frozenset({"DEPARTMENT"}),
        }
        networks = candidate_networks(schema_graph, keyword_relations, max_size=2)
        assert any(network.size == 1 for network in networks)

    def test_no_keywords_rejected(self, schema_graph):
        with pytest.raises(QueryError):
            candidate_networks(schema_graph, {}, max_size=3)

    def test_describe(self, schema_graph, keyword_relations):
        networks = candidate_networks(schema_graph, keyword_relations, max_size=2)
        assert "EMPLOYEE" in networks[0].describe()
