"""Engine-level live updates: apply(), version, rebuild hygiene."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.executor import ExecutionStats
from repro.errors import IntegrityError
from repro.live.changes import Delete, Insert, Update
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


class TestApply:
    def test_version_bumps_and_stamps(self, engine):
        assert engine.version == 0
        changeset = engine.apply(
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Nora"})]
        )
        assert engine.version == 1
        assert changeset.version == 1
        engine.apply([Delete(tid("DEPENDENT", "t9"))])
        assert engine.version == 2

    def test_apply_equals_rebuilt_engine(self, engine):
        engine.apply(
            [
                Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                     "DEPENDENT_NAME": "Smith"}),
                Update(tid("DEPARTMENT", "d2"),
                       {"D_DESCRIPTION": "XML retrieval lab"}),
                Delete(tid("DEPENDENT", "t1")),
            ]
        )
        fresh = KeywordSearchEngine(engine.database)
        for query in ("Smith XML", "Smith Brown", "XML"):
            for semantics in ("and", "or"):
                assert rendered(
                    engine.search(query, semantics=semantics)
                ) == rendered(fresh.search(query, semantics=semantics))

    def test_failed_apply_changes_nothing(self, engine):
        baseline = rendered(engine.search("Smith XML"))
        version = engine.version
        with pytest.raises(IntegrityError):
            engine.apply(
                [
                    Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                         "DEPENDENT_NAME": "Smith"}),
                    Delete(tid("EMPLOYEE", "e2")),  # referenced -> fails
                ]
            )
        assert engine.version == version
        assert rendered(engine.search("Smith XML")) == baseline
        assert rendered(
            KeywordSearchEngine(engine.database).search("Smith XML")
        ) == baseline

    def test_fk_delete_error_is_clear_and_non_corrupting(self, engine):
        with pytest.raises(IntegrityError, match="still referenced"):
            engine.apply([Delete(tid("EMPLOYEE", "e1"))])
        # Graph untouched: the employee and its edges still answer.
        assert engine.data_graph.has_node(tid("EMPLOYEE", "e1"))
        assert rendered(engine.search("Smith XML")) == rendered(
            KeywordSearchEngine(engine.database).search("Smith XML")
        )

    def test_empty_batch_bumps_version_only(self, engine):
        engine.search("Smith XML")
        stores = engine.result_cache.stats.stores
        changeset = engine.apply([])
        assert changeset.is_empty()
        assert engine.version == 1
        assert engine.result_cache.stats.invalidated == 0
        assert engine.result_cache.stats.stores == stores

    def test_stream_and_batch_see_mutations(self, engine):
        engine.apply(
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Smith"})]
        )
        fresh = KeywordSearchEngine(engine.database)
        assert rendered(list(engine.search_stream("Smith XML"))) == rendered(
            list(fresh.search_stream("Smith XML"))
        )
        assert [rendered(r) for r in engine.search_batch(
            ["Smith XML", "Smith Brown"]
        )] == [rendered(r) for r in fresh.search_batch(
            ["Smith XML", "Smith Brown"]
        )]


class TestRebuildHygiene:
    def test_rebuild_clears_pipeline_state(self, engine):
        engine.search_batch(["Smith XML", "SMITH XML"], top_k=2)
        assert engine.last_stats.candidates > 0
        assert len(engine.last_shared) > 0
        assert len(engine.result_cache) > 0
        version = engine.version
        engine.rebuild()
        assert engine.last_stats == ExecutionStats()
        assert len(engine.last_shared) == 0
        assert len(engine.result_cache) == 0
        assert engine.version == version + 1

    def test_rebuild_still_oracle_after_direct_mutation(self, engine):
        engine.search("Nora")
        engine.database.insert(
            "DEPENDENT", {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"}
        )
        engine.rebuild()
        results = engine.search("Nora")
        assert len(results) == 1


class TestStreamMutationInterleaving:
    def test_stream_refuses_to_continue_after_apply(self, engine):
        from repro.errors import MutationError

        stream = engine.search_stream("Smith XML")
        next(stream)
        engine.apply(
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Smith"})]
        )
        with pytest.raises(MutationError, match="restart the stream"):
            next(stream)

    def test_abandoned_stream_never_pollutes_cache(self, engine):
        stream = engine.search_stream("Smith XML")
        next(stream)
        engine.apply(
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Smith"})]
        )
        stream.close()
        fresh = KeywordSearchEngine(engine.database)
        assert rendered(engine.search("Smith XML")) == rendered(
            fresh.search("Smith XML")
        )

    def test_cached_replay_also_guarded(self, engine):
        from repro.errors import MutationError

        list(engine.search_stream("Smith XML"))  # populate cache
        stream = engine.search_stream("Smith XML")  # replays entry
        next(stream)
        engine.apply([Delete(tid("DEPENDENT", "t1"))])
        with pytest.raises(MutationError):
            next(stream)
