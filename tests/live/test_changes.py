"""Unit tests for the change-log / transaction layer."""

import json
import pickle

import pytest

from repro.errors import (
    ForeignKeyError,
    IntegrityError,
    MutationError,
    MutationFormatError,
    PrimaryKeyError,
    WalError,
)
from repro.live.changes import (
    Delete,
    Insert,
    Update,
    apply_record,
    apply_to_database,
    changeset_from_record,
    changeset_to_record,
    load_mutation_batches,
    mutation_from_json,
)
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


class TestApply:
    def test_insert_produces_tuple_and_edge(self, company_db):
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Nora"})],
        )
        assert changeset.tuples_added == (tid("DEPENDENT", "t9"),)
        assert len(changeset.edges_added) == 1
        edge = changeset.edges_added[0]
        assert edge.referencing == tid("DEPENDENT", "t9")
        assert edge.referenced == tid("EMPLOYEE", "e1")

    def test_delete_produces_removed_edge(self, company_db):
        changeset = apply_to_database(
            company_db, [Delete(tid("DEPENDENT", "t1"))]
        )
        assert changeset.tuples_removed == (tid("DEPENDENT", "t1"),)
        assert [e.referenced for e in changeset.edges_removed] == [
            tid("EMPLOYEE", "e3")
        ]

    def test_update_fk_column_swaps_edge(self, company_db):
        changeset = apply_to_database(
            company_db, [Update(tid("DEPENDENT", "t1"), {"ESSN": "e2"})]
        )
        assert changeset.tuples_updated == (tid("DEPENDENT", "t1"),)
        assert [e.referenced for e in changeset.edges_removed] == [
            tid("EMPLOYEE", "e3")
        ]
        assert [e.referenced for e in changeset.edges_added] == [
            tid("EMPLOYEE", "e2")
        ]

    def test_value_update_has_no_edge_delta(self, company_db):
        changeset = apply_to_database(
            company_db,
            [Update(tid("DEPARTMENT", "d1"), {"D_DESCRIPTION": "robotics"})],
        )
        assert changeset.edges_added == ()
        assert changeset.edges_removed == ()

    def test_insert_then_delete_nets_to_nothing(self, company_db):
        before = company_db.count()
        changeset = apply_to_database(
            company_db,
            [
                Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                     "DEPENDENT_NAME": "Nora"}),
                Delete(tid("DEPENDENT", "t9")),
            ],
        )
        assert changeset.is_empty()
        assert company_db.count() == before

    def test_delete_then_reinsert_nets_to_update(self, company_db):
        changeset = apply_to_database(
            company_db,
            [
                Delete(tid("DEPENDENT", "t1")),
                Insert("DEPENDENT", {"ID": "t1", "ESSN": "e2",
                                     "DEPENDENT_NAME": "Renamed"}),
            ],
        )
        assert changeset.tuples_added == ()
        assert changeset.tuples_removed == ()
        assert changeset.tuples_updated == ()
        assert changeset.tuples_replaced == (tid("DEPENDENT", "t1"),)
        # The edge moved from e3 to e2.
        assert [e.referenced for e in changeset.edges_removed] == [
            tid("EMPLOYEE", "e3")
        ]
        assert [e.referenced for e in changeset.edges_added] == [
            tid("EMPLOYEE", "e2")
        ]


class TestValidationAndRollback:
    def test_dangling_insert_rejected(self, company_db):
        with pytest.raises(ForeignKeyError):
            apply_to_database(
                company_db,
                [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e99",
                                      "DEPENDENT_NAME": "Nora"})],
            )

    def test_validates_even_when_enforcement_is_off(self, company_db):
        company_db.enforce_foreign_keys = False
        with pytest.raises(ForeignKeyError):
            apply_to_database(
                company_db,
                [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e99",
                                      "DEPENDENT_NAME": "Nora"})],
            )
        assert company_db.enforce_foreign_keys is False

    def test_delete_of_referenced_tuple_rejected(self, company_db):
        with pytest.raises(IntegrityError, match="still referenced"):
            apply_to_database(company_db, [Delete(tid("EMPLOYEE", "e1"))])

    def test_failed_batch_rolls_back_completely(self, company_db):
        before = {record.tid: dict(record.values)
                  for record in company_db.all_tuples()}
        with pytest.raises(PrimaryKeyError):
            apply_to_database(
                company_db,
                [
                    Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                         "DEPENDENT_NAME": "Nora"}),
                    Update(tid("DEPARTMENT", "d1"),
                           {"D_DESCRIPTION": "changed"}),
                    Delete(tid("DEPENDENT", "t2")),
                    # Fails: duplicate primary key.
                    Insert("DEPENDENT", {"ID": "t1", "ESSN": "e1",
                                         "DEPENDENT_NAME": "Dup"}),
                ],
            )
        after = {record.tid: dict(record.values)
                 for record in company_db.all_tuples()}
        assert after == before

    def test_rollback_restores_updated_values(self, company_db):
        original = dict(company_db.tuple(tid("DEPARTMENT", "d1")).values)
        with pytest.raises(IntegrityError):
            apply_to_database(
                company_db,
                [
                    Update(tid("DEPARTMENT", "d1"),
                           {"D_DESCRIPTION": "changed"}),
                    Delete(tid("EMPLOYEE", "e1")),  # referenced -> fails
                ],
            )
        assert dict(company_db.tuple(tid("DEPARTMENT", "d1")).values) == original

    def test_rollback_restores_store_order(self, company_db):
        before = [record.tid for record in company_db.all_tuples()]
        with pytest.raises(PrimaryKeyError):
            apply_to_database(
                company_db,
                [
                    Delete(tid("DEPENDENT", "t1")),  # mid-store delete
                    # Fails: duplicate primary key.
                    Insert("DEPENDENT", {"ID": "t2", "ESSN": "e1",
                                         "DEPENDENT_NAME": "Dup"}),
                ],
            )
        # Not just the same tuple set — the same store *order*: posting
        # order and answer enumeration observe it.
        assert [record.tid for record in company_db.all_tuples()] == before

    def test_live_index_still_fresh_after_failed_batch(self, company_db):
        from repro.live.maintain import apply_to_index
        from repro.relational.index import InvertedIndex

        index = InvertedIndex(company_db)
        with pytest.raises(PrimaryKeyError):
            apply_to_database(
                company_db,
                [
                    Delete(tid("DEPENDENT", "t1")),
                    Insert("DEPENDENT", {"ID": "t2", "ESSN": "e1",
                                         "DEPENDENT_NAME": "Dup"}),
                ],
            )
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e3",
                                  "DEPENDENT_NAME": "Nora"})],
        )
        apply_to_index(index, company_db, changeset)
        fresh = InvertedIndex(company_db)
        assert index.vocabulary() == fresh.vocabulary()
        for token in fresh.vocabulary():
            assert index.postings(token) == fresh.postings(token), token

    def test_pk_update_rejected(self, company_db):
        with pytest.raises(PrimaryKeyError):
            apply_to_database(
                company_db, [Update(tid("DEPARTMENT", "d1"), {"ID": "d9"})]
            )

    def test_unknown_mutation_type_rejected(self, company_db):
        with pytest.raises(MutationError):
            apply_to_database(company_db, ["not a mutation"])


class TestReplayFormat:
    def test_json_round_trip(self):
        insert = mutation_from_json(
            {"op": "insert", "relation": "DEPENDENT",
             "values": {"ID": "t9"}, "label": "t9"}
        )
        assert insert == Insert("DEPENDENT", {"ID": "t9"}, "t9")
        update = mutation_from_json(
            {"op": "update", "relation": "DEPARTMENT", "key": ["d1"],
             "values": {"D_DESCRIPTION": "x"}}
        )
        assert update == Update(tid("DEPARTMENT", "d1"),
                                {"D_DESCRIPTION": "x"})
        delete = mutation_from_json(
            {"op": "delete", "relation": "DEPENDENT", "key": ["t1"]}
        )
        assert delete == Delete(tid("DEPENDENT", "t1"))

    def test_unknown_op_rejected(self):
        with pytest.raises(MutationError):
            mutation_from_json({"op": "upsert"})

    def test_flat_file_becomes_one_batch(self, tmp_path):
        path = tmp_path / "muts.json"
        path.write_text(
            '[{"op": "delete", "relation": "DEPENDENT", "key": ["t1"]}]'
        )
        batches = load_mutation_batches(str(path))
        assert batches == [[Delete(tid("DEPENDENT", "t1"))]]

    def test_malformed_batch_shape_rejected(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text('[{"op": "delete", "relation": "DEPENDENT", '
                        '"key": ["t1"]}, [1, 2]]')
        with pytest.raises(MutationError, match="batch"):
            load_mutation_batches(str(path))

    def test_missing_fields_rejected_with_context(self):
        with pytest.raises(MutationError, match="malformed"):
            mutation_from_json({"op": "update", "relation": "DEPARTMENT"})
        with pytest.raises(MutationError, match="malformed"):
            mutation_from_json({"op": "delete", "relation": "X", "key": 3})

    def test_rollback_survives_dangling_fk_on_unenforced_database(
        self, db_schema
    ):
        from repro.relational.database import Database

        database = Database(db_schema, enforce_foreign_keys=False)
        # Legal in bulk-load mode: a dependent whose employee FK dangles.
        database.insert("DEPENDENT", {"ID": "dx", "ESSN": "e99",
                                      "DEPENDENT_NAME": "Nora"})
        before = {record.tid: dict(record.values)
                  for record in database.all_tuples()}
        with pytest.raises(IntegrityError):
            apply_to_database(
                database,
                [
                    Delete(tid("DEPENDENT", "dx")),
                    Delete(tid("DEPENDENT", "dx")),  # fails: already gone
                ],
            )
        # The rollback re-insert of dx must not be re-validated (its
        # dangling FK was legal) — the tuple is restored, not lost.
        after = {record.tid: dict(record.values)
                 for record in database.all_tuples()}
        assert after == before
        assert database.enforce_foreign_keys is False


class TestWalRecordCodec:
    def _record_for(self, database, mutations, version=1):
        changeset = apply_to_database(database, mutations)
        return changeset, changeset_to_record(changeset, database, version)

    def test_round_trip_applies_identically(self, company_db):
        from repro.datasets.company import build_company_database

        changeset, record = self._record_for(
            company_db,
            [
                Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                     "DEPENDENT_NAME": "Nora"}),
                Update(tid("DEPARTMENT", "d1"),
                       {"D_DESCRIPTION": "new words"}),
                Delete(tid("DEPENDENT", "t2")),
            ],
        )
        # The record survives the JSON boundary it will cross in the log.
        record = json.loads(json.dumps(record))

        skeleton = changeset_from_record(record, company_db.schema)
        assert skeleton.tuples_added == changeset.tuples_added
        assert skeleton.tuples_removed == changeset.tuples_removed
        assert skeleton.tuples_updated == changeset.tuples_updated
        assert skeleton.tuples_replaced == changeset.tuples_replaced
        assert skeleton.edges_added == changeset.edges_added
        assert skeleton.edges_removed == changeset.edges_removed
        assert skeleton.version == 1

        replica = build_company_database()
        replayed = apply_record(record, replica)
        assert replayed.tuples_added == changeset.tuples_added
        for name in ("DEPENDENT", "DEPARTMENT", "EMPLOYEE"):
            assert (replica.relation_key_order(name)
                    == company_db.relation_key_order(name))
            for key in replica.relation_key_order(name):
                assert (dict(replica.tuple(TupleId(name, key)).values)
                        == dict(company_db.tuple(TupleId(name, key)).values))
        assert replica.enforce_foreign_keys is True

    def test_replaced_rows_keep_their_tail_position(self, company_db):
        from repro.datasets.company import build_company_database

        # Delete + re-insert of t1 nets to a *replace*: the row moves to
        # the store tail, interleaved with the genuinely new t9.  The
        # record must reproduce that order, not the pre-batch one.
        __, record = self._record_for(
            company_db,
            [
                Delete(tid("DEPENDENT", "t1")),
                Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                     "DEPENDENT_NAME": "Nora"}),
                Insert("DEPENDENT", {"ID": "t1", "ESSN": "e2",
                                     "DEPENDENT_NAME": "Alice II"}),
            ],
        )
        appended_keys = [tuple(key) for __, key, __v, __l in
                         record["appended"]]
        assert appended_keys == [("t9",), ("t1",)]

        replica = build_company_database()
        apply_record(record, replica)
        assert (replica.relation_key_order("DEPENDENT")
                == company_db.relation_key_order("DEPENDENT"))
        assert dict(replica.tuple(tid("DEPENDENT", "t1")).values)[
            "ESSN"] == "e2"

    def test_unknown_foreign_key_refused(self, company_db):
        __, record = self._record_for(
            company_db,
            [Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Nora"})],
        )
        record["edges_added"][0][2] = "fk_never_existed"
        with pytest.raises(WalError, match="unknown foreign key"):
            changeset_from_record(record, company_db.schema)

    def test_malformed_record_refused(self, company_db):
        with pytest.raises(WalError, match="malformed WAL record"):
            changeset_from_record({"version": 1}, company_db.schema)
        with pytest.raises(WalError, match="malformed WAL record"):
            changeset_from_record(
                {"version": 1, "added": [["DEPENDENT"]], "removed": [],
                 "updated": [], "replaced": [], "edges_added": [],
                 "edges_removed": []},
                company_db.schema,
            )

    def test_record_refusing_database_raises_wal_error(self, company_db):
        __, record = self._record_for(
            company_db, [Delete(tid("DEPENDENT", "t2"))]
        )
        record["removed"] = [["DEPENDENT", ["never-there"]]]
        from repro.datasets.company import build_company_database

        with pytest.raises(WalError, match="does not apply"):
            apply_record(record, build_company_database())


class TestMutationFormatErrorContext:
    def test_bad_json_carries_location(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('[\n  {"op": "delete",\n')
        with pytest.raises(MutationFormatError) as info:
            load_mutation_batches(str(path))
        context = info.value.context
        assert context["path"] == str(path)
        assert context["line"] == 3
        assert isinstance(context["column"], int)
        assert isinstance(context["offset"], int)
        assert str(path) in str(info.value)

    def test_bad_shape_carries_batch_index(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text('[[{"op": "delete", "relation": "DEPENDENT", '
                        '"key": ["t1"]}], "not-a-batch"]')
        with pytest.raises(MutationFormatError) as info:
            load_mutation_batches(str(path))
        assert info.value.context["batch"] == 1
        assert info.value.context["path"] == str(path)

    def test_bad_record_carries_batch_and_record_indices(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(
            '[[{"op": "delete", "relation": "DEPENDENT", "key": ["t1"]}],'
            ' [{"op": "delete", "relation": "DEPENDENT", "key": ["t2"]},'
            '  {"op": "update", "relation": "DEPARTMENT"}]]'
        )
        with pytest.raises(MutationFormatError) as info:
            load_mutation_batches(str(path))
        context = info.value.context
        assert context["batch"] == 1
        assert context["record"] == 1
        assert context["path"] == str(path)

    def test_pickle_round_trip_preserves_context(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(MutationFormatError) as info:
            load_mutation_batches(str(path))
        clone = pickle.loads(pickle.dumps(info.value))
        assert type(clone) is MutationFormatError
        assert clone.context == info.value.context
        assert str(clone) == str(info.value)
