"""Incremental maintainers equal a full rebuild, structure by structure."""

from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.live.changes import Delete, Insert, Update, apply_to_database
from repro.live.maintain import (
    affected_tuples,
    apply_changeset,
    apply_to_traversal_cache,
)
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex


def tid(relation, *key):
    return TupleId(relation, tuple(key))


def graph_signature(data_graph):
    graph = data_graph.graph
    nodes = sorted((str(n), data["relation"]) for n, data in graph.nodes(data=True))
    edges = sorted(
        (str(u), str(v), key, data["foreign_key"].name, str(data["referencing"]))
        for u, v, key, data in graph.edges(keys=True, data=True)
    )
    return nodes, edges


def index_signature(index):
    return {
        token: list(index.postings(token)) for token in index.vocabulary()
    }


BATCH = [
    Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"}),
    Update(tid("DEPARTMENT", "d2"), {"D_DESCRIPTION": "Quantum projects"}),
    Update(tid("DEPENDENT", "t2"), {"ESSN": "e1"}),
    Delete(tid("DEPENDENT", "t1")),
]


class TestMaintainers:
    def test_index_equals_fresh_build(self, company_db):
        index = InvertedIndex(company_db)
        changeset = apply_to_database(company_db, BATCH)
        apply_changeset(changeset, company_db, index=index)
        assert index_signature(index) == index_signature(
            InvertedIndex(company_db)
        )

    def test_index_after_delete_reinsert_equals_fresh_build(self, company_db):
        # A replace moves the tuple to the relation's store tail; its
        # posting position must follow (posting order included).
        index = InvertedIndex(company_db)
        changeset = apply_to_database(
            company_db,
            [
                Delete(tid("DEPENDENT", "t1")),
                Insert("DEPENDENT", {"ID": "t1", "ESSN": "e2",
                                     "DEPENDENT_NAME": "Renamed"}),
            ],
        )
        assert changeset.tuples_replaced == (tid("DEPENDENT", "t1"),)
        apply_changeset(changeset, company_db, index=index)
        assert index_signature(index) == index_signature(
            InvertedIndex(company_db)
        )

    def test_graph_equals_fresh_build(self, company_db):
        data_graph = DataGraph(company_db)
        changeset = apply_to_database(company_db, BATCH)
        apply_changeset(changeset, company_db, data_graph=data_graph)
        assert graph_signature(data_graph) == graph_signature(
            DataGraph(company_db)
        )

    def test_conceptual_view_patched_not_stale(self, company_db):
        data_graph = DataGraph(company_db)
        stale = data_graph.conceptual_graph()
        changeset = apply_to_database(
            company_db,
            [Insert("WORKS_FOR",
                    {"ESSN": "e3", "P_ID": "p1", "HOURS": 5})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        fresh = data_graph.conceptual_graph()
        assert fresh is not stale
        assert fresh.has_edge(tid("EMPLOYEE", "e3"), tid("PROJECT", "p1"))


class TestTraversalCacheInvalidation:
    def test_only_touched_component_maps_drop(self, company_db):
        # Add an isolated department: its component is separate from the
        # main one, so its distance map must survive mutations elsewhere.
        company_db.insert("DEPARTMENT", {"ID": "d9", "D_NAME": "isolated"})
        data_graph = DataGraph(company_db)
        cache = TraversalCache(data_graph)
        cache.distances(tid("DEPARTMENT", "d9"))
        cache.distances(tid("EMPLOYEE", "e1"))
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT",
                    {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        dropped = apply_to_traversal_cache(cache, changeset)
        assert dropped == 1  # only the main component's map
        cache.hits = cache.misses = 0
        cache.distances(tid("DEPARTMENT", "d9"))
        assert cache.hits == 1 and cache.misses == 0
        cache.distances(tid("EMPLOYEE", "e1"))
        assert cache.misses == 1

    def test_value_only_update_keeps_every_map(self, company_db):
        data_graph = DataGraph(company_db)
        cache = TraversalCache(data_graph)
        cache.distances(tid("EMPLOYEE", "e1"))
        cache.expansions(tid("DEPARTMENT", "d1"))
        changeset = apply_to_database(
            company_db,
            [Update(tid("DEPARTMENT", "d1"), {"D_DESCRIPTION": "robotics"})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        assert apply_to_traversal_cache(cache, changeset) == 0
        cache.hits = cache.misses = 0
        cache.distances(tid("EMPLOYEE", "e1"))
        assert cache.hits == 1 and cache.misses == 0
        assert tid("DEPARTMENT", "d1") in cache._expansions

    def test_adjacency_dropped_for_endpoints_only(self, company_db):
        data_graph = DataGraph(company_db)
        cache = TraversalCache(data_graph)
        cache.expansions(tid("EMPLOYEE", "e1"))
        cache.expansions(tid("EMPLOYEE", "e3"))
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT",
                    {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        cache.invalidate_tuples(changeset.touched())
        assert tid("EMPLOYEE", "e1") not in cache._expansions
        assert tid("EMPLOYEE", "e3") in cache._expansions
        # Re-derived expansion sees the new edge.
        others = [other for other, __, __ in
                  cache.expansions(tid("EMPLOYEE", "e1"))]
        assert tid("DEPENDENT", "t9") in others


class TestAffectedTuples:
    def test_structural_change_taints_whole_component(self, company_db):
        data_graph = DataGraph(company_db)
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT",
                    {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        affected = affected_tuples(data_graph, changeset)
        # Everything is one component in the running example.
        assert tid("DEPARTMENT", "d2") in affected
        assert tid("DEPENDENT", "t9") in affected

    def test_value_update_taints_only_the_tuple(self, company_db):
        data_graph = DataGraph(company_db)
        changeset = apply_to_database(
            company_db,
            [Update(tid("DEPARTMENT", "d1"), {"D_DESCRIPTION": "robotics"})],
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        affected = affected_tuples(data_graph, changeset)
        assert affected == frozenset({tid("DEPARTMENT", "d1")})

    def test_removed_tuple_still_reported_affected(self, company_db):
        data_graph = DataGraph(company_db)
        changeset = apply_to_database(
            company_db, [Delete(tid("DEPENDENT", "t1"))]
        )
        apply_changeset(changeset, company_db, data_graph=data_graph)
        affected = affected_tuples(data_graph, changeset)
        assert tid("DEPENDENT", "t1") in affected
        assert tid("EMPLOYEE", "e3") in affected
