"""Unit tests for the dependency-tracked answer cache."""

from repro.core.engine import KeywordSearchEngine
from repro.live.changes import Delete, Insert, Update
from repro.live.result_cache import CacheEntry, ResultCache
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


def entry(keywords=("x",), footprint=(), fingerprint=((),), volatile=False):
    return CacheEntry(
        results=(),
        stats=None,
        keywords=tuple(keywords),
        footprint=frozenset(footprint),
        fingerprint=tuple(fingerprint),
        volatile=volatile,
    )


class TestLruMechanics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup("k") is None
        cache.store("k", entry())
        assert cache.lookup("k") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", entry())
        cache.store("b", entry())
        cache.lookup("a")  # refresh a; b becomes LRU
        cache.store("c", entry())
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.stats.evicted == 1

    def test_zero_entries_disables_cache(self):
        cache = ResultCache(max_entries=0)
        cache.store("a", entry())
        assert len(cache) == 0
        assert cache.lookup("a") is None


class TestInvalidation:
    def test_footprint_intersection_drops_entry(self, index):
        cache = ResultCache()
        cache.store("hit", entry(keywords=("smith",),
                                 footprint=[tid("EMPLOYEE", "e1")],
                                 fingerprint=(index.matching_tuples("smith"),)))
        cache.store("survives", entry(keywords=("smith",),
                                      footprint=[tid("EMPLOYEE", "e3")],
                                      fingerprint=(index.matching_tuples("smith"),)))
        dropped = cache.invalidate({tid("EMPLOYEE", "e1")}, index)
        assert dropped == 1
        assert cache.lookup("survives") is not None
        assert cache.lookup("hit") is None

    def test_fingerprint_change_drops_entry(self, company_db, index):
        cache = ResultCache()
        cache.store("q", entry(keywords=("smith",),
                               footprint=[tid("EMPLOYEE", "e1")],
                               fingerprint=(index.matching_tuples("smith"),)))
        # A new tuple matching "smith" in an untouched spot of the graph:
        # the footprint misses it, the fingerprint must not.
        record = company_db.insert(
            "DEPENDENT", {"ID": "t9", "ESSN": "e3", "DEPENDENT_NAME": "Smith"}
        )
        index.add_tuple(record)
        dropped = cache.invalidate(set(), index)
        assert dropped == 1

    def test_volatile_entry_drops_on_any_change(self, index):
        cache = ResultCache()
        cache.store("tfidf", entry(volatile=True))
        assert cache.invalidate({tid("EMPLOYEE", "e1")}, index) == 1


class TestEngineIntegration:
    def test_unrelated_component_keeps_entry(self, company_db):
        # Two disconnected worlds: the running example plus an isolated
        # department.  Mutating the isolated one must not invalidate
        # cached answers from the main component.
        company_db.insert(
            "DEPARTMENT", {"ID": "d9", "D_NAME": "solo",
                           "D_DESCRIPTION": "isolated island"}
        )
        engine = KeywordSearchEngine(company_db)
        engine.search("Smith XML")
        engine.search("island")
        assert engine.result_cache.stats.stores == 2
        engine.apply([Update(tid("DEPARTMENT", "d9"),
                             {"D_DESCRIPTION": "still isolated island"})])
        assert engine.result_cache.stats.invalidated == 1  # only "island"
        engine.search("Smith XML")
        assert engine.result_cache.stats.hits == 1

    def test_metrics_registry_mirrors_cache_counters(self, company_db):
        # The same hit/miss/store/invalidation transitions the CacheStats
        # object records are exported through the repro.obs registry when
        # metrics are enabled.
        from repro.obs import metrics as obs_metrics

        engine = KeywordSearchEngine(company_db)
        obs_metrics.REGISTRY.reset()
        obs_metrics.set_enabled(True)
        try:
            engine.search("Smith XML")           # miss + store
            engine.search("Smith XML")           # hit
            engine.apply([Update(tid("DEPARTMENT", "d1"),
                                 {"D_DESCRIPTION": "XML bases"})])
            engine.search("Smith XML")           # invalidated -> miss again
        finally:
            obs_metrics.set_enabled(False)
        counters = obs_metrics.REGISTRY.snapshot()["counters"]
        obs_metrics.REGISTRY.reset()
        stats = engine.result_cache.stats
        assert counters["result_cache.hits"] == stats.hits == 1
        assert counters["result_cache.misses"] == stats.misses == 2
        assert counters["result_cache.stores"] == stats.stores == 2
        assert counters["result_cache.invalidated"] == stats.invalidated == 1
        assert counters["engine.changesets_applied"] == 1

    def test_hit_replays_identical_results_and_stats(self, engine):
        cold = engine.search("Smith XML", top_k=3)
        cold_stats = engine.last_stats
        warm = engine.search("Smith XML", top_k=3)
        assert [(r.render(), r.score, r.rank) for r in warm] == [
            (r.render(), r.score, r.rank) for r in cold
        ]
        assert engine.last_stats == cold_stats
        assert engine.last_stats is not cold_stats

    def test_mutation_then_search_reflects_change(self, engine):
        before = engine.search("Nora")
        assert before == []
        engine.apply([Insert("DEPENDENT", {"ID": "t9", "ESSN": "e1",
                                           "DEPENDENT_NAME": "Nora"})])
        after = engine.search("Nora")
        assert len(after) == 1
        assert "t9" in after[0].render()

    def test_delete_invalidates_and_disappears(self, engine):
        engine.search("Alice")  # t1's dependent name in the running example
        engine.apply([Delete(tid("DEPENDENT", "t1"))])
        fresh = KeywordSearchEngine(engine.database)
        assert [r.render() for r in engine.search("Alice")] == [
            r.render() for r in fresh.search("Alice")
        ]
