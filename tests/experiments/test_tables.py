"""The reproduction harness must regenerate Tables 1-3 exactly."""

import pytest

from repro.core.associations import AssociationKind
from repro.experiments.report import ReproductionMismatch, render_table
from repro.experiments.tables import paper_connections, table1, table2, table3


class TestTable1:
    def test_regenerates(self):
        rows = table1()
        assert len(rows) == 6

    def test_closeness_pattern(self):
        rows = table1()
        assert [row.is_close for row in rows] == [
            True, True, True, False, False, False,
        ]

    def test_kinds(self):
        rows = table1()
        assert rows[0].kind is AssociationKind.IMMEDIATE
        assert rows[1].kind is AssociationKind.IMMEDIATE
        assert rows[2].kind is AssociationKind.TRANSITIVE_FUNCTIONAL
        assert rows[3].kind is AssociationKind.TRANSITIVE_NM
        assert rows[4].kind is AssociationKind.TRANSITIVE_NM
        assert rows[5].kind is AssociationKind.TRANSITIVE_NM

    def test_row5_is_the_canonical_transitive_nm(self):
        rows = table1()
        assert rows[4].loose_joints == (0,)

    def test_cardinalities_rendered_like_paper(self):
        rows = table1()
        assert rows[2].cardinalities == "department 1:N employee 1:N dependent"


class TestTable2:
    def test_regenerates_all_nine_rows(self):
        rows = table2()
        assert [row.number for row in rows] == list(range(1, 10))

    def test_lengths(self):
        rows = table2()
        assert [(row.rdb_length, row.er_length) for row in rows] == [
            (1, 1), (2, 1), (2, 2), (3, 2), (1, 1), (2, 2), (3, 2), (2, 2),
            (4, 3),
        ]

    def test_er_length_never_exceeds_rdb(self):
        for row in table2():
            assert row.er_length <= row.rdb_length

    def test_rendering_matches_paper(self):
        rows = table2()
        assert rows[0].rendered == "d1(XML) – e1(Smith)"
        assert rows[8].rendered == "d2 – p2 – w_f3 – e3 – t1(Alice)"


class TestTable3:
    def test_regenerates(self):
        rows = table3()
        assert len(rows) == 9

    def test_connection2_cardinalities(self):
        rows = table3()
        assert rows[1].rendered == "p1(XML) 1:N w_f1 N:1 e1(Smith)"

    def test_connection9_cardinalities(self):
        rows = table3()
        assert rows[8].rendered == "d2 1:N p2 1:N w_f3 N:1 e3 1:N t1(Alice)"


class TestPaperConnections:
    def test_connections_keyed_by_row(self):
        connections = paper_connections()
        assert sorted(connections) == list(range(1, 10))

    def test_searched_rows_are_exactly_the_published_ones(self):
        connections = paper_connections()
        assert connections[4].rdb_length == 3
        assert connections[2].er_length == 1


class TestRenderTable:
    def test_renders_fixed_width(self):
        text = render_table("t", ["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[2:]}) >= 1

    def test_mismatch_is_an_exception(self):
        assert issubclass(ReproductionMismatch, Exception)
