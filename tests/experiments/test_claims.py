"""The §3 claims must verify mechanically."""

from repro.experiments.claims import mtjnt_loss, ranking_comparison


class TestMtjntLoss:
    def test_survivors_and_lost(self):
        result = mtjnt_loss()
        assert result.mtjnt_rows == (1, 2, 5)
        assert result.lost_rows == (3, 4, 6, 7)

    def test_exactly_three_mtjnts(self):
        assert mtjnt_loss().mtjnt_count == 3


class TestRankingComparison:
    def test_rdb_groups(self):
        result = ranking_comparison()
        assert result.rdb_best == (1, 5)
        assert result.rdb_worst == (4, 7)

    def test_closeness_groups(self):
        result = ranking_comparison()
        assert result.closeness_best == (1, 2, 5)
        assert result.closeness_worst == (3, 6)

    def test_connections_4_and_7_promoted(self):
        result = ranking_comparison()
        rdb_positions = {n: i for i, n in enumerate(result.rdb_order)}
        closeness_positions = {n: i for i, n in enumerate(result.closeness_order)}
        for number in (4, 7):
            assert closeness_positions[number] < rdb_positions[number]

    def test_orders_cover_all_seven(self):
        result = ranking_comparison()
        assert sorted(result.rdb_order) == list(range(1, 8))
        assert sorted(result.closeness_order) == list(range(1, 8))
