"""The reproduction harness must regenerate Figures 1 and 2."""

from repro.experiments.figures import figure1, figure2


class TestFigure1:
    def test_mapping_reproduces_figure2_schema(self):
        result = figure1()
        names = {relation.name for relation in result.mapped_schema.relations}
        assert names == {
            "DEPARTMENT", "PROJECT", "EMPLOYEE", "WORKS_FOR", "DEPENDENT",
        }

    def test_middle_relation_named_as_printed(self):
        result = figure1()
        assert result.mapped_schema.relation("WORKS_FOR").is_middle

    def test_description_covers_er_primitives(self):
        result = figure1()
        for token in ("WORKS_ON", "CONTROLS", "N:M", "1:N"):
            assert token in result.description


class TestFigure2:
    def test_counts(self):
        result = figure2()
        assert result.tuple_counts == {
            "DEPARTMENT": 3,
            "PROJECT": 3,
            "EMPLOYEE": 4,
            "WORKS_FOR": 4,
            "DEPENDENT": 2,
        }

    def test_paper_stated_matches(self):
        result = figure2()
        assert set(result.smith_labels) == {"e1", "e2"}
        assert set(result.xml_labels) == {"d1", "d2", "p1", "p2"}
