"""The verbatim Figure 2 rendering."""

from repro.experiments.figures import figure2_text


class TestFigure2Text:
    def test_all_relations_rendered(self):
        text = figure2_text()
        for name in ("DEPARTMENT", "PROJECT", "EMPLOYEE", "WORKS_FOR",
                     "DEPENDENT"):
            assert name in text

    def test_printed_values_present(self):
        text = figure2_text()
        for value in (
            "The main topics of teaching are history of Scandinavian.",
            "DB-project",
            "XML and IR",
            "Barbara",
            "Theodore",
        ):
            assert value in text

    def test_row_counts(self):
        text = figure2_text()
        # 16 data rows + 5 headers + 5 separators + 5 titles + 4 blanks.
        assert len(text.splitlines()) == 16 + 5 + 5 + 5 + 4

    def test_hours_rendered_as_numbers(self):
        text = figure2_text()
        for hours in ("40", "56", "70", "60"):
            assert hours in text
