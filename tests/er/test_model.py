"""Unit tests for the ER model classes."""

import pytest

from repro.er.cardinality import Cardinality
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownEntityTypeError,
    UnknownRelationshipError,
)


def make_entity(name="E", key="ID"):
    return EntityType(name, [Attribute(key, is_key=True), Attribute("NAME")])


class TestAttribute:
    def test_defaults(self):
        attribute = Attribute("NAME")
        assert attribute.data_type == "str"
        assert not attribute.is_key
        assert not attribute.is_text

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_frozen(self):
        attribute = Attribute("NAME")
        with pytest.raises(AttributeError):
            attribute.name = "OTHER"


class TestEntityType:
    def test_attributes_in_declaration_order(self):
        entity = EntityType("E", [Attribute("A"), Attribute("B")])
        assert [a.name for a in entity.attributes] == ["A", "B"]

    def test_key_attributes(self):
        entity = make_entity()
        assert [a.name for a in entity.key_attributes] == ["ID"]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            EntityType("E", [Attribute("A"), Attribute("A")])

    def test_attribute_lookup(self):
        entity = make_entity()
        assert entity.attribute("NAME").name == "NAME"

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_entity().attribute("MISSING")

    def test_has_attribute(self):
        entity = make_entity()
        assert entity.has_attribute("ID")
        assert not entity.has_attribute("MISSING")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            EntityType("")

    def test_equality_by_name(self):
        assert make_entity("X") == make_entity("X")
        assert make_entity("X") != make_entity("Y")

    def test_add_attribute_after_construction(self):
        entity = make_entity()
        entity.add_attribute(Attribute("EXTRA"))
        assert entity.has_attribute("EXTRA")


class TestRelationshipType:
    def test_other_end(self):
        relationship = RelationshipType(
            "R", "A", "B", Cardinality.parse("1:N")
        )
        assert relationship.other_end("A") == "B"
        assert relationship.other_end("B") == "A"

    def test_other_end_rejects_stranger(self):
        relationship = RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
        with pytest.raises(UnknownEntityTypeError):
            relationship.other_end("C")

    def test_cardinality_from_left(self):
        relationship = RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
        assert relationship.cardinality_from("A") == Cardinality.parse("1:N")

    def test_cardinality_from_right_is_reversed(self):
        relationship = RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
        assert relationship.cardinality_from("B") == Cardinality.parse("N:1")

    def test_cardinality_from_stranger_raises(self):
        relationship = RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
        with pytest.raises(UnknownEntityTypeError):
            relationship.cardinality_from("C")

    def test_reflexive(self):
        relationship = RelationshipType("R", "A", "A", Cardinality.parse("N:M"))
        assert relationship.is_reflexive

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationshipType("", "A", "B", Cardinality.parse("1:N"))

    def test_relationship_attributes(self):
        relationship = RelationshipType(
            "R", "A", "B", Cardinality.parse("N:M"),
            attributes=(Attribute("HOURS", data_type="int"),),
        )
        assert relationship.attributes[0].name == "HOURS"


class TestERSchema:
    def test_add_and_lookup_entity(self):
        schema = ERSchema()
        schema.add_entity_type(make_entity("A"))
        assert schema.entity_type("A").name == "A"
        assert schema.has_entity_type("A")

    def test_duplicate_entity_rejected(self):
        schema = ERSchema(entity_types=[make_entity("A")])
        with pytest.raises(SchemaError):
            schema.add_entity_type(make_entity("A"))

    def test_unknown_entity_raises(self):
        with pytest.raises(UnknownEntityTypeError):
            ERSchema().entity_type("A")

    def test_relationship_requires_registered_endpoints(self):
        schema = ERSchema(entity_types=[make_entity("A")])
        with pytest.raises(UnknownEntityTypeError):
            schema.add_relationship(
                RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
            )

    def test_duplicate_relationship_rejected(self):
        schema = ERSchema(entity_types=[make_entity("A"), make_entity("B")])
        schema.add_relationship(
            RelationshipType("R", "A", "B", Cardinality.parse("1:N"))
        )
        with pytest.raises(SchemaError):
            schema.add_relationship(
                RelationshipType("R", "A", "B", Cardinality.parse("N:M"))
            )

    def test_unknown_relationship_raises(self):
        with pytest.raises(UnknownRelationshipError):
            ERSchema().relationship("R")

    def test_relationships_of(self):
        schema = ERSchema(
            entity_types=[make_entity("A"), make_entity("B"), make_entity("C")]
        )
        schema.add_relationship(
            RelationshipType("R1", "A", "B", Cardinality.parse("1:N"))
        )
        schema.add_relationship(
            RelationshipType("R2", "B", "C", Cardinality.parse("N:M"))
        )
        assert [r.name for r in schema.relationships_of("B")] == ["R1", "R2"]
        assert [r.name for r in schema.relationships_of("A")] == ["R1"]

    def test_relationships_between(self):
        schema = ERSchema(entity_types=[make_entity("A"), make_entity("B")])
        schema.add_relationship(
            RelationshipType("R1", "A", "B", Cardinality.parse("1:N"))
        )
        between = schema.relationships_between("B", "A")
        assert [r.name for r in between] == ["R1"]

    def test_neighbours(self):
        schema = ERSchema(entity_types=[make_entity("A"), make_entity("B")])
        schema.add_relationship(
            RelationshipType("R1", "A", "B", Cardinality.parse("1:N"))
        )
        neighbours = list(schema.neighbours("A"))
        assert neighbours[0][1] == "B"

    def test_validate_accepts_keyed_entities(self, er_schema):
        er_schema.validate()

    def test_validate_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            ERSchema().validate()

    def test_validate_rejects_orphan_keyless_entity(self):
        schema = ERSchema(entity_types=[EntityType("A", [Attribute("X")])])
        with pytest.raises(SchemaError):
            schema.validate()

    def test_describe_mentions_everything(self, er_schema):
        description = er_schema.describe()
        for name in ("DEPARTMENT", "EMPLOYEE", "PROJECT", "DEPENDENT",
                     "WORKS_FOR", "WORKS_ON", "CONTROLS", "DEPENDENTS"):
            assert name in description


class TestCompanyErSchema:
    def test_entity_types(self, er_schema):
        names = {entity.name for entity in er_schema.entity_types}
        assert names == {"DEPARTMENT", "EMPLOYEE", "PROJECT", "DEPENDENT"}

    def test_relationship_cardinalities(self, er_schema):
        assert str(er_schema.relationship("WORKS_FOR").cardinality) == "1:N"
        assert str(er_schema.relationship("CONTROLS").cardinality) == "1:N"
        assert str(er_schema.relationship("DEPENDENTS").cardinality) == "1:N"
        assert str(er_schema.relationship("WORKS_ON").cardinality) == "N:M"

    def test_works_on_carries_hours(self, er_schema):
        attributes = er_schema.relationship("WORKS_ON").attributes
        assert [a.name for a in attributes] == ["HOURS"]
