"""Unit tests for ER paths and their enumeration."""

import pytest

from repro.er.cardinality import Cardinality
from repro.er.paths import ERPath, ERStep, enumerate_paths
from repro.errors import PathError


def rel(schema, name):
    return schema.relationship(name)


class TestERStep:
    def test_forward(self, er_schema):
        step = ERStep.forward(rel(er_schema, "WORKS_FOR"))
        assert step.source == "DEPARTMENT"
        assert step.target == "EMPLOYEE"
        assert str(step.cardinality) == "1:N"

    def test_backward(self, er_schema):
        step = ERStep.backward(rel(er_schema, "WORKS_FOR"))
        assert step.source == "EMPLOYEE"
        assert str(step.cardinality) == "N:1"

    def test_reversed(self, er_schema):
        step = ERStep.forward(rel(er_schema, "CONTROLS")).reversed()
        assert step.source == "PROJECT"
        assert str(step.cardinality) == "N:1"

    def test_rejects_foreign_endpoints(self, er_schema):
        with pytest.raises(PathError):
            ERStep(rel(er_schema, "WORKS_FOR"), "PROJECT", "EMPLOYEE")

    def test_rejects_loop_on_non_reflexive(self, er_schema):
        with pytest.raises(PathError):
            ERStep(rel(er_schema, "WORKS_FOR"), "EMPLOYEE", "EMPLOYEE")

    def test_str(self, er_schema):
        step = ERStep.forward(rel(er_schema, "WORKS_ON"))
        assert str(step) == "PROJECT N:M EMPLOYEE"


class TestERPath:
    def test_empty_rejected(self):
        with pytest.raises(PathError):
            ERPath([])

    def test_disconnected_rejected(self, er_schema):
        with pytest.raises(PathError):
            ERPath(
                [
                    ERStep.forward(rel(er_schema, "WORKS_FOR")),
                    ERStep.forward(rel(er_schema, "CONTROLS")),
                ]
            )

    def test_from_relationships_table1_row3(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "EMPLOYEE", "DEPENDENT"]
        )
        assert path.length == 2
        assert [str(c) for c in path.cardinalities()] == ["1:N", "1:N"]

    def test_from_relationships_needs_two_names(self, er_schema):
        with pytest.raises(PathError):
            ERPath.from_relationships(er_schema, ["DEPARTMENT"])

    def test_from_relationships_rejects_unconnected(self, er_schema):
        with pytest.raises(PathError):
            ERPath.from_relationships(er_schema, ["DEPARTMENT", "DEPENDENT"])

    def test_endpoints_and_entities(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["PROJECT", "DEPARTMENT", "EMPLOYEE"]
        )
        assert path.source == "PROJECT"
        assert path.target == "EMPLOYEE"
        assert path.entities() == ("PROJECT", "DEPARTMENT", "EMPLOYEE")

    def test_is_immediate(self, er_schema):
        path = ERPath.from_relationships(er_schema, ["DEPARTMENT", "EMPLOYEE"])
        assert path.is_immediate

    def test_composed_table1_row5(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["PROJECT", "DEPARTMENT", "EMPLOYEE"]
        )
        assert path.composed() == Cardinality.many_to_many()

    def test_reversed_swaps_endpoints(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "EMPLOYEE", "DEPENDENT"]
        )
        reverse = path.reversed()
        assert reverse.source == "DEPENDENT"
        assert reverse.target == "DEPARTMENT"
        assert [str(c) for c in reverse.cardinalities()] == ["N:1", "N:1"]

    def test_reversed_composition_is_reversed(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "PROJECT", "EMPLOYEE"]
        )
        assert path.reversed().composed() == path.composed().reversed()

    def test_subpath(self, er_schema):
        path = ERPath.from_relationships(
            er_schema,
            ["DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"],
        )
        sub = path.subpath(1, 3)
        assert sub.source == "PROJECT"
        assert sub.target == "DEPENDENT"

    def test_str_matches_paper_notation(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "EMPLOYEE", "DEPENDENT"]
        )
        assert str(path) == "DEPARTMENT 1:N EMPLOYEE 1:N DEPENDENT"

    def test_equality_and_hash(self, er_schema):
        first = ERPath.from_relationships(er_schema, ["DEPARTMENT", "EMPLOYEE"])
        second = ERPath.from_relationships(er_schema, ["DEPARTMENT", "EMPLOYEE"])
        assert first == second
        assert len({first, second}) == 1

    def test_len_and_iter(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "PROJECT", "EMPLOYEE"]
        )
        assert len(path) == 2
        assert [s.target for s in path] == ["PROJECT", "EMPLOYEE"]


class TestEnumeratePaths:
    def test_department_to_employee_direct_and_transitive(self, er_schema):
        paths = list(enumerate_paths(er_schema, "DEPARTMENT", "EMPLOYEE", 2))
        rendered = {str(path) for path in paths}
        assert "DEPARTMENT 1:N EMPLOYEE" in rendered
        assert "DEPARTMENT 1:N PROJECT N:M EMPLOYEE" in rendered
        assert len(paths) == 2

    def test_shorter_paths_come_first(self, er_schema):
        paths = list(enumerate_paths(er_schema, "DEPARTMENT", "EMPLOYEE", 3))
        lengths = [path.length for path in paths]
        assert lengths == sorted(lengths)

    def test_max_length_zero_yields_nothing(self, er_schema):
        assert list(enumerate_paths(er_schema, "DEPARTMENT", "EMPLOYEE", 0)) == []

    def test_paths_are_simple(self, er_schema):
        for path in enumerate_paths(er_schema, "DEPARTMENT", "DEPENDENT", 4):
            entities = path.entities()
            assert len(entities) == len(set(entities))

    def test_unknown_entity_raises(self, er_schema):
        with pytest.raises(Exception):
            list(enumerate_paths(er_schema, "NOPE", "EMPLOYEE", 2))

    def test_department_to_dependent(self, er_schema):
        paths = list(enumerate_paths(er_schema, "DEPARTMENT", "DEPENDENT", 3))
        rendered = {str(path) for path in paths}
        # Table 1 rows 3 and 6.
        assert "DEPARTMENT 1:N EMPLOYEE 1:N DEPENDENT" in rendered
        assert (
            "DEPARTMENT 1:N PROJECT N:M EMPLOYEE 1:N DEPENDENT" in rendered
        )

    def test_deterministic_order(self, er_schema):
        first = [str(p) for p in enumerate_paths(er_schema, "PROJECT", "DEPENDENT", 4)]
        second = [str(p) for p in enumerate_paths(er_schema, "PROJECT", "DEPENDENT", 4)]
        assert first == second

    def test_parallel_relationships_yield_separate_paths(self):
        from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType

        schema = ERSchema(name="parallel")
        for name in ("A", "B"):
            schema.add_entity_type(
                EntityType(name, [Attribute("ID", is_key=True)])
            )
        schema.add_relationship(
            RelationshipType("OWNS", "A", "B", Cardinality.parse("1:N"))
        )
        schema.add_relationship(
            RelationshipType("RENTS", "A", "B", Cardinality.parse("N:M"))
        )
        paths = list(enumerate_paths(schema, "A", "B", 1))
        names = {p.steps[0].relationship.name for p in paths}
        assert names == {"OWNS", "RENTS"}

    def test_parallel_relationships_make_from_relationships_ambiguous(self):
        from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType

        schema = ERSchema(name="parallel")
        for name in ("A", "B"):
            schema.add_entity_type(
                EntityType(name, [Attribute("ID", is_key=True)])
            )
        schema.add_relationship(
            RelationshipType("OWNS", "A", "B", Cardinality.parse("1:N"))
        )
        schema.add_relationship(
            RelationshipType("RENTS", "A", "B", Cardinality.parse("N:M"))
        )
        with pytest.raises(PathError):
            ERPath.from_relationships(schema, ["A", "B"])
