"""Unit tests for relational-to-ER reverse engineering."""

import pytest

from repro.datasets.company import build_company_er_schema, build_company_schema
from repro.er.mapping import map_er_to_relational
from repro.er.reverse import detect_middle_relations, reverse_engineer
from repro.errors import MappingError
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)


class TestMiddleDetection:
    def test_flagged_middles_are_detected(self, db_schema):
        assert detect_middle_relations(db_schema) == ("WORKS_FOR",)

    def test_structural_detection_without_flag(self):
        schema = DatabaseSchema(name="s")
        schema.add_relation(
            Relation("A", [AttributeDef("ID")], primary_key=["ID"])
        )
        schema.add_relation(
            Relation("B", [AttributeDef("ID")], primary_key=["ID"])
        )
        schema.add_relation(
            Relation(
                "LINK",
                [AttributeDef("A_ID"), AttributeDef("B_ID"), AttributeDef("W")],
                primary_key=["A_ID", "B_ID"],
            )
        )
        schema.add_foreign_key(ForeignKey("f1", "LINK", ("A_ID",), "A", ("ID",)))
        schema.add_foreign_key(ForeignKey("f2", "LINK", ("B_ID",), "B", ("ID",)))
        assert detect_middle_relations(schema) == ("LINK",)

    def test_relation_with_own_key_is_not_middle(self):
        schema = DatabaseSchema(name="s")
        schema.add_relation(Relation("A", [AttributeDef("ID")], primary_key=["ID"]))
        schema.add_relation(Relation("B", [AttributeDef("ID")], primary_key=["ID"]))
        schema.add_relation(
            Relation(
                "EVENT",
                [
                    AttributeDef("ID"),
                    AttributeDef("A_ID"),
                    AttributeDef("B_ID"),
                ],
                primary_key=["ID"],
            )
        )
        schema.add_foreign_key(ForeignKey("f1", "EVENT", ("A_ID",), "A", ("ID",)))
        schema.add_foreign_key(ForeignKey("f2", "EVENT", ("B_ID",), "B", ("ID",)))
        assert detect_middle_relations(schema) == ()

    def test_single_fk_relation_is_not_middle(self, db_schema):
        assert "DEPENDENT" not in detect_middle_relations(db_schema)


class TestReverseEngineering:
    def test_company_entities(self, db_schema):
        result = reverse_engineer(db_schema)
        names = {entity.name for entity in result.er_schema.entity_types}
        assert names == {"DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"}

    def test_company_relationship_count(self, db_schema):
        result = reverse_engineer(db_schema)
        # 3 plain FKs between entity relations + 1 N:M via the middle.
        assert len(result.er_schema.relationships) == 4

    def test_plain_fk_becomes_one_to_many(self, db_schema):
        result = reverse_engineer(db_schema)
        name = result.relationship_of_fk["fk_employee_department"]
        relationship = result.er_schema.relationship(name)
        assert str(relationship.cardinality) == "1:N"
        assert relationship.left == "DEPARTMENT"
        assert relationship.right == "EMPLOYEE"

    def test_middle_becomes_many_to_many(self, db_schema):
        result = reverse_engineer(db_schema)
        name = result.relationship_of_middle["WORKS_FOR"]
        relationship = result.er_schema.relationship(name)
        assert relationship.cardinality.is_many_to_many
        assert {relationship.left, relationship.right} == {"EMPLOYEE", "PROJECT"}

    def test_middle_payload_becomes_relationship_attribute(self, db_schema):
        result = reverse_engineer(db_schema)
        name = result.relationship_of_middle["WORKS_FOR"]
        relationship = result.er_schema.relationship(name)
        assert [a.name for a in relationship.attributes] == ["HOURS"]

    def test_unique_fk_becomes_one_to_one(self):
        schema = DatabaseSchema(name="s")
        schema.add_relation(Relation("A", [AttributeDef("ID")], primary_key=["ID"]))
        schema.add_relation(
            Relation(
                "B",
                [AttributeDef("ID"), AttributeDef("A_ID")],
                primary_key=["ID"],
            )
        )
        schema.add_foreign_key(
            ForeignKey("f", "B", ("A_ID",), "A", ("ID",), unique=True)
        )
        result = reverse_engineer(schema)
        relationship = result.er_schema.relationship(result.relationship_of_fk["f"])
        assert relationship.cardinality.is_one_to_one

    def test_ternary_middle_rejected(self):
        schema = DatabaseSchema(name="s")
        for name in ("A", "B", "C"):
            schema.add_relation(
                Relation(name, [AttributeDef("ID")], primary_key=["ID"])
            )
        schema.add_relation(
            Relation(
                "LINK",
                [AttributeDef("A_ID"), AttributeDef("B_ID"), AttributeDef("C_ID")],
                primary_key=["A_ID", "B_ID", "C_ID"],
            )
        )
        for name in ("A", "B", "C"):
            schema.add_foreign_key(
                ForeignKey(f"f{name}", "LINK", (f"{name}_ID",), name, ("ID",))
            )
        with pytest.raises(MappingError):
            reverse_engineer(schema)

    def test_round_trip_preserves_structure(self):
        """ER -> relational -> ER preserves cardinalities and arity."""
        original = build_company_er_schema()
        mapped = map_er_to_relational(original)
        recovered = reverse_engineer(mapped.schema)
        cardinalities = sorted(
            str(r.cardinality) for r in recovered.er_schema.relationships
        )
        assert cardinalities == sorted(
            str(r.cardinality) for r in original.relationships
        )
        assert {e.name for e in recovered.er_schema.entity_types} == {
            e.name for e in original.entity_types
        }
