"""Unit tests for weak entity types and identifying relationships.

The Elmasri–Navathe COMPANY schema (which the paper's Figure 1 abridges)
models DEPENDENT as a weak entity identified by its guardian employee plus
a partial key (the dependent's name).  The paper's Figure 2 regularises it
with a surrogate ID; the library supports both designs.
"""

import pytest

from repro.er.cardinality import Cardinality
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.errors import SchemaError
from repro.relational.database import Database


def weak_company_schema() -> ERSchema:
    """EMPLOYEE with DEPENDENT as a true weak entity."""
    schema = ERSchema(name="weak-company")
    schema.add_entity_type(
        EntityType(
            "EMPLOYEE",
            [Attribute("SSN", is_key=True), Attribute("L_NAME")],
        )
    )
    schema.add_entity_type(
        EntityType(
            "DEPENDENT",
            [Attribute("DEPENDENT_NAME", is_key=True),
             Attribute("BIRTH_YEAR", data_type="int")],
            weak=True,
        )
    )
    schema.add_relationship(
        RelationshipType(
            "DEPENDENTS",
            "EMPLOYEE",
            "DEPENDENT",
            Cardinality.parse("1:N"),
            identifying=True,
        )
    )
    schema.validate()
    return schema


class TestModel:
    def test_weak_flag(self):
        schema = weak_company_schema()
        assert schema.entity_type("DEPENDENT").weak
        assert not schema.entity_type("EMPLOYEE").weak

    def test_identifying_relationship_lookup(self):
        schema = weak_company_schema()
        assert schema.identifying_relationship("DEPENDENT").name == "DEPENDENTS"

    def test_identifying_lookup_rejects_strong_entity(self):
        schema = weak_company_schema()
        with pytest.raises(SchemaError):
            schema.identifying_relationship("EMPLOYEE")

    def test_identifying_must_be_owner_functional(self):
        with pytest.raises(SchemaError):
            RelationshipType(
                "BAD", "A", "B", Cardinality.parse("N:M"), identifying=True
            )

    def test_one_to_one_identifying_allowed(self):
        relationship = RelationshipType(
            "OK", "A", "B", Cardinality.parse("1:1"), identifying=True
        )
        assert relationship.identifying

    def test_validate_requires_identifying_relationship(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(
            EntityType("A", [Attribute("ID", is_key=True)])
        )
        schema.add_entity_type(
            EntityType("W", [Attribute("NAME", is_key=True)], weak=True)
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_rejects_weak_owner(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(EntityType("A", [Attribute("ID", is_key=True)]))
        schema.add_entity_type(
            EntityType("W1", [Attribute("N1", is_key=True)], weak=True)
        )
        schema.add_entity_type(
            EntityType("W2", [Attribute("N2", is_key=True)], weak=True)
        )
        schema.add_relationship(
            RelationshipType("R1", "A", "W1", Cardinality.parse("1:N"),
                             identifying=True)
        )
        schema.add_relationship(
            RelationshipType("R2", "W1", "W2", Cardinality.parse("1:N"),
                             identifying=True)
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_requires_partial_key(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(EntityType("A", [Attribute("ID", is_key=True)]))
        schema.add_entity_type(
            EntityType("W", [Attribute("NAME")], weak=True)
        )
        schema.add_relationship(
            RelationshipType("R", "A", "W", Cardinality.parse("1:N"),
                             identifying=True)
        )
        with pytest.raises(SchemaError):
            schema.validate()


class TestMapping:
    def test_weak_relation_has_composite_key(self):
        from repro.er.mapping import map_er_to_relational

        result = map_er_to_relational(weak_company_schema())
        dependent = result.schema.relation("DEPENDENT")
        assert dependent.primary_key == ("EMPLOYEE_SSN", "DEPENDENT_NAME")

    def test_identifying_fk_created(self):
        from repro.er.mapping import map_er_to_relational

        result = map_er_to_relational(weak_company_schema())
        fk = result.schema.foreign_key(result.fk_of_relationship["DEPENDENTS"])
        assert fk.source == "DEPENDENT"
        assert fk.target == "EMPLOYEE"
        assert fk.source_columns == ("EMPLOYEE_SSN",)

    def test_column_name_override(self):
        from repro.er.mapping import map_er_to_relational

        result = map_er_to_relational(
            weak_company_schema(), column_names={"DEPENDENTS": "ESSN"}
        )
        assert result.schema.relation("DEPENDENT").primary_key == (
            "ESSN", "DEPENDENT_NAME",
        )

    def test_mapped_schema_validates(self):
        from repro.er.mapping import map_er_to_relational

        result = map_er_to_relational(weak_company_schema())
        result.schema.validate()


class TestInstanceLevel:
    @pytest.fixture
    def database(self):
        from repro.er.mapping import map_er_to_relational

        result = map_er_to_relational(
            weak_company_schema(), column_names={"DEPENDENTS": "ESSN"}
        )
        database = Database(result.schema)
        database.insert("EMPLOYEE", {"SSN": "e1", "L_NAME": "Smith"})
        database.insert("EMPLOYEE", {"SSN": "e2", "L_NAME": "Miller"})
        database.insert(
            "DEPENDENT",
            {"ESSN": "e1", "DEPENDENT_NAME": "Alice", "BIRTH_YEAR": 2010},
        )
        database.insert(
            "DEPENDENT",
            {"ESSN": "e2", "DEPENDENT_NAME": "Alice", "BIRTH_YEAR": 2012},
        )
        return database

    def test_same_partial_key_under_different_owners(self, database):
        # Two Alices, distinguished by their guardians: legal for weak
        # entities, and the whole point of the composite key.
        assert database.count("DEPENDENT") == 2

    def test_same_owner_same_partial_key_rejected(self, database):
        from repro.errors import PrimaryKeyError

        with pytest.raises(PrimaryKeyError):
            database.insert(
                "DEPENDENT",
                {"ESSN": "e1", "DEPENDENT_NAME": "Alice", "BIRTH_YEAR": 2011},
            )

    def test_weak_tuples_are_searchable(self, database):
        from repro.core.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(database)
        results = engine.search("Smith Alice")
        assert results
        best = results[0].answer
        assert best.rdb_length == 1
        assert best.verdict().is_close
