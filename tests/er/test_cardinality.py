"""Unit tests for the cardinality algebra."""

import pytest

from repro.er.cardinality import Cardinality, Multiplicity, compose_path
from repro.errors import PathError


class TestMultiplicity:
    def test_parse_one(self):
        assert Multiplicity.parse("1") is Multiplicity.ONE

    def test_parse_n(self):
        assert Multiplicity.parse("N") is Multiplicity.MANY

    def test_parse_m_is_many(self):
        assert Multiplicity.parse("M") is Multiplicity.MANY

    def test_parse_star_is_many(self):
        assert Multiplicity.parse("*") is Multiplicity.MANY

    def test_parse_lower_case(self):
        assert Multiplicity.parse("n") is Multiplicity.MANY

    def test_parse_strips_whitespace(self):
        assert Multiplicity.parse(" 1 ") is Multiplicity.ONE

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Multiplicity.parse("2")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            Multiplicity.parse("")

    def test_is_one(self):
        assert Multiplicity.ONE.is_one
        assert not Multiplicity.MANY.is_one

    def test_is_many(self):
        assert Multiplicity.MANY.is_many
        assert not Multiplicity.ONE.is_many

    def test_str(self):
        assert str(Multiplicity.ONE) == "1"
        assert str(Multiplicity.MANY) == "N"


class TestCardinalityParsing:
    @pytest.mark.parametrize(
        "text, left, right",
        [
            ("1:1", Multiplicity.ONE, Multiplicity.ONE),
            ("1:N", Multiplicity.ONE, Multiplicity.MANY),
            ("N:1", Multiplicity.MANY, Multiplicity.ONE),
            ("N:M", Multiplicity.MANY, Multiplicity.MANY),
            ("M:N", Multiplicity.MANY, Multiplicity.MANY),
        ],
    )
    def test_parse(self, text, left, right):
        cardinality = Cardinality.parse(text)
        assert cardinality.left is left
        assert cardinality.right is right

    def test_parse_rejects_missing_colon(self):
        with pytest.raises(ValueError):
            Cardinality.parse("1N")

    def test_parse_rejects_three_parts(self):
        with pytest.raises(ValueError):
            Cardinality.parse("1:N:M")

    def test_constructors_match_parse(self):
        assert Cardinality.one_to_one() == Cardinality.parse("1:1")
        assert Cardinality.one_to_many() == Cardinality.parse("1:N")
        assert Cardinality.many_to_one() == Cardinality.parse("N:1")
        assert Cardinality.many_to_many() == Cardinality.parse("N:M")

    def test_round_trip_rendering(self):
        for text in ("1:1", "1:N", "N:1", "N:M"):
            assert str(Cardinality.parse(text)) == text

    def test_nm_renders_with_m(self):
        assert str(Cardinality.many_to_many()) == "N:M"

    def test_hashable_and_equal(self):
        assert Cardinality.parse("1:N") == Cardinality.parse("1:N")
        assert len({Cardinality.parse("1:N"), Cardinality.parse("1:N")}) == 1


class TestCardinalityPredicates:
    def test_forward_functional(self):
        assert Cardinality.parse("N:1").forward_functional
        assert Cardinality.parse("1:1").forward_functional
        assert not Cardinality.parse("1:N").forward_functional
        assert not Cardinality.parse("N:M").forward_functional

    def test_backward_functional(self):
        assert Cardinality.parse("1:N").backward_functional
        assert Cardinality.parse("1:1").backward_functional
        assert not Cardinality.parse("N:1").backward_functional

    def test_is_functional(self):
        assert Cardinality.parse("1:N").is_functional
        assert Cardinality.parse("N:1").is_functional
        assert Cardinality.parse("1:1").is_functional
        assert not Cardinality.parse("N:M").is_functional

    def test_is_many_to_many(self):
        assert Cardinality.parse("N:M").is_many_to_many
        assert not Cardinality.parse("1:N").is_many_to_many

    def test_is_one_to_one(self):
        assert Cardinality.parse("1:1").is_one_to_one
        assert not Cardinality.parse("N:1").is_one_to_one


class TestReversal:
    def test_reverse_one_to_many(self):
        assert Cardinality.parse("1:N").reversed() == Cardinality.parse("N:1")

    def test_reverse_symmetric_cases(self):
        assert Cardinality.parse("1:1").reversed() == Cardinality.parse("1:1")
        assert Cardinality.parse("N:M").reversed() == Cardinality.parse("N:M")

    def test_double_reverse_is_identity(self):
        for text in ("1:1", "1:N", "N:1", "N:M"):
            cardinality = Cardinality.parse(text)
            assert cardinality.reversed().reversed() == cardinality


class TestComposition:
    @pytest.mark.parametrize(
        "first, second, expected",
        [
            # Functional chains stay functional.
            ("1:N", "1:N", "1:N"),
            ("N:1", "N:1", "N:1"),
            ("1:1", "1:1", "1:1"),
            ("1:1", "1:N", "1:N"),
            ("1:N", "1:1", "1:N"),
            # Fan-in then fan-out: the paper's transitive N:M.
            ("N:1", "1:N", "N:M"),
            # Fan-out then fan-in composes to N:M as well (both ends many).
            ("1:N", "N:1", "N:M"),
            # Any N:M step poisons functionality.
            ("N:M", "1:N", "N:M"),
            ("1:N", "N:M", "N:M"),
            ("N:M", "N:M", "N:M"),
            # N:M then N:1 keeps forward multi-valued, backward multi too.
            ("N:M", "N:1", "N:M"),
        ],
    )
    def test_pairwise(self, first, second, expected):
        composed = Cardinality.parse(first).compose(Cardinality.parse(second))
        assert composed == Cardinality.parse(expected)

    def test_paper_relationship_3(self):
        # department 1:N employee 1:N dependent -> 1:N (functional).
        composed = compose_path(
            [Cardinality.parse("1:N"), Cardinality.parse("1:N")]
        )
        assert composed == Cardinality.parse("1:N")
        assert composed.is_functional

    def test_paper_relationship_4(self):
        # department 1:N project N:M employee -> N:M (loose).
        composed = compose_path(
            [Cardinality.parse("1:N"), Cardinality.parse("N:M")]
        )
        assert composed.is_many_to_many

    def test_paper_relationship_5(self):
        # project N:1 department 1:N employee -> N:M (loose).
        composed = compose_path(
            [Cardinality.parse("N:1"), Cardinality.parse("1:N")]
        )
        assert composed.is_many_to_many

    def test_paper_relationship_6(self):
        # department 1:N project N:M employee 1:N dependent -> N:M.
        composed = compose_path(
            [
                Cardinality.parse("1:N"),
                Cardinality.parse("N:M"),
                Cardinality.parse("1:N"),
            ]
        )
        assert composed.is_many_to_many

    def test_single_step_composition_is_identity(self):
        for text in ("1:1", "1:N", "N:1", "N:M"):
            assert compose_path([Cardinality.parse(text)]) == Cardinality.parse(text)

    def test_empty_path_raises(self):
        with pytest.raises(PathError):
            compose_path([])

    def test_compose_accepts_generator(self):
        steps = (Cardinality.parse(t) for t in ("1:N", "1:N"))
        assert compose_path(steps) == Cardinality.parse("1:N")

    def test_one_to_one_chain_is_one_to_one(self):
        composed = compose_path([Cardinality.parse("1:1")] * 4)
        assert composed.is_one_to_one

    def test_functional_definition_mixed_with_one_to_one(self):
        # 1:1 steps inside an otherwise 1:N chain keep it functional
        # (the paper: "a functional relationship may also contain 1:1").
        composed = compose_path(
            [
                Cardinality.parse("1:N"),
                Cardinality.parse("1:1"),
                Cardinality.parse("1:N"),
            ]
        )
        assert composed == Cardinality.parse("1:N")
        assert composed.is_functional
