"""Unit tests for the ER-to-relational mapping."""

import pytest

from repro.datasets.company import build_company_er_schema
from repro.er.cardinality import Cardinality
from repro.er.mapping import map_er_to_relational
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.errors import MappingError


def simple_schema(cardinality="1:N"):
    schema = ERSchema(name="s")
    for name in ("A", "B"):
        schema.add_entity_type(
            EntityType(name, [Attribute("ID", is_key=True), Attribute("NAME")])
        )
    schema.add_relationship(
        RelationshipType("R", "A", "B", Cardinality.parse(cardinality))
    )
    return schema


class TestEntityMapping:
    def test_entity_becomes_relation(self):
        result = map_er_to_relational(simple_schema())
        assert result.schema.has_relation("A")
        assert result.schema.has_relation("B")
        assert result.relation_of_entity == {"A": "A", "B": "B"}

    def test_key_attribute_becomes_primary_key(self):
        result = map_er_to_relational(simple_schema())
        assert result.schema.relation("A").primary_key == ("ID",)

    def test_text_attribute_maps_to_text_type(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(
            EntityType(
                "A",
                [Attribute("ID", is_key=True), Attribute("DESC", is_text=True)],
            )
        )
        result = map_er_to_relational(schema)
        assert result.schema.relation("A").attribute("DESC").data_type == "text"

    def test_entity_without_key_rejected(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(EntityType("A", [Attribute("X")]))
        with pytest.raises(MappingError):
            map_er_to_relational(schema)


class TestFunctionalRelationships:
    def test_one_to_many_puts_fk_on_many_side(self):
        result = map_er_to_relational(simple_schema("1:N"))
        fk = result.schema.foreign_key(result.fk_of_relationship["R"])
        assert fk.source == "B"       # the N side holds the reference
        assert fk.target == "A"
        assert not fk.unique

    def test_many_to_one_puts_fk_on_left(self):
        result = map_er_to_relational(simple_schema("N:1"))
        fk = result.schema.foreign_key(result.fk_of_relationship["R"])
        assert fk.source == "A"
        assert fk.target == "B"

    def test_one_to_one_is_unique_fk(self):
        result = map_er_to_relational(simple_schema("1:1"))
        fk = result.schema.foreign_key(result.fk_of_relationship["R"])
        assert fk.unique

    def test_generated_column_name(self):
        result = map_er_to_relational(simple_schema("1:N"))
        fk = result.schema.foreign_key(result.fk_of_relationship["R"])
        assert fk.source_columns == ("A_ID",)

    def test_column_name_override(self):
        result = map_er_to_relational(
            simple_schema("1:N"), column_names={"R": "PARENT"}
        )
        fk = result.schema.foreign_key(result.fk_of_relationship["R"])
        assert fk.source_columns == ("PARENT",)


class TestManyToMany:
    def test_middle_relation_created(self):
        result = map_er_to_relational(simple_schema("N:M"))
        assert "R" in result.relation_of_relationship.values() or \
            result.relation_of_relationship["R"] == "R"
        middle = result.schema.relation("R")
        assert middle.is_middle
        assert middle.implements_relationship == "R"

    def test_middle_primary_key_is_both_legs(self):
        result = map_er_to_relational(simple_schema("N:M"))
        middle = result.schema.relation("R")
        assert set(middle.primary_key) == {"A_ID", "B_ID"}

    def test_middle_has_two_fks(self):
        result = map_er_to_relational(simple_schema("N:M"))
        assert len(result.schema.foreign_keys_from("R")) == 2

    def test_relationship_attributes_land_on_middle(self):
        schema = simple_schema("N:M")
        # Rebuild with an attribute on the relationship.
        schema = ERSchema(
            name="s",
            entity_types=[
                EntityType("A", [Attribute("ID", is_key=True)]),
                EntityType("B", [Attribute("ID", is_key=True)]),
            ],
            relationships=[
                RelationshipType(
                    "R", "A", "B", Cardinality.parse("N:M"),
                    attributes=(Attribute("HOURS", data_type="int"),),
                )
            ],
        )
        result = map_er_to_relational(schema)
        assert result.schema.relation("R").has_attribute("HOURS")

    def test_middle_name_override(self):
        result = map_er_to_relational(
            simple_schema("N:M"), middle_relation_names={"R": "LINKS"}
        )
        assert result.schema.relation("LINKS").is_middle

    def test_reflexive_nm_gets_disambiguated_columns(self):
        schema = ERSchema(name="s")
        schema.add_entity_type(EntityType("A", [Attribute("ID", is_key=True)]))
        schema.add_relationship(
            RelationshipType("R", "A", "A", Cardinality.parse("N:M"))
        )
        result = map_er_to_relational(schema)
        middle = result.schema.relation("R")
        assert set(middle.primary_key) == {"A_ID_left", "A_ID_right"}


class TestCompanyMapping:
    def test_company_schema_maps(self):
        result = map_er_to_relational(build_company_er_schema())
        names = {relation.name for relation in result.schema.relations}
        assert names == {
            "DEPARTMENT", "EMPLOYEE", "PROJECT", "DEPENDENT", "WORKS_ON",
        }
        assert result.schema.relation("WORKS_ON").is_middle

    def test_company_fk_count(self):
        result = map_er_to_relational(build_company_er_schema())
        # WORKS_FOR, CONTROLS, DEPENDENTS as plain FKs + 2 middle legs.
        assert len(result.schema.foreign_keys) == 5

    def test_schema_validates(self):
        result = map_er_to_relational(build_company_er_schema())
        result.schema.validate()
