"""Cost-routed batch dispatch: partition correctness and balance."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.planner import route_by_cost


def _makespan(assignment, costs):
    return max(
        (sum(costs[p] for p in chunk) for chunk in assignment if chunk),
        default=0.0,
    )


class TestRouteByCost:
    def test_partitions_every_position_exactly_once(self):
        costs = [5.0, 1.0, 9.0, 2.0, 2.0, 7.0, 1.0]
        assignment = route_by_cost(costs, jobs=3)
        flat = sorted(p for chunk in assignment for p in chunk)
        assert flat == list(range(len(costs)))

    def test_chunks_stay_in_input_order(self):
        # The pool error protocol needs every chunk ascending: a worker
        # stops at its first error and the coordinator re-raises the
        # error of the earliest input position.
        costs = [3.0, 8.0, 1.0, 5.0, 2.0, 9.0]
        for chunk in route_by_cost(costs, jobs=3):
            assert chunk == sorted(chunk)

    def test_deterministic(self):
        costs = [4.0, 4.0, 4.0, 1.0, 1.0]
        assert route_by_cost(costs, 2) == route_by_cost(costs, 2)

    def test_single_job_is_one_chunk(self):
        assert route_by_cost([1.0, 2.0, 3.0], 1) == [[0, 1, 2]]
        assert route_by_cost([1.0, 2.0, 3.0], 0) == [[0, 1, 2]]

    def test_more_jobs_than_queries(self):
        assignment = route_by_cost([2.0, 1.0], jobs=8)
        assert len(assignment) == 2
        assert sorted(p for chunk in assignment for p in chunk) == [0, 1]

    def test_empty_batch(self):
        assert route_by_cost([], jobs=4) == []

    def test_beats_contiguous_chunking_on_skew(self):
        # One hot query followed by cheap ones: contiguous halving puts
        # the hot query plus half the tail on worker 0; LPT isolates it.
        costs = [100.0] + [1.0] * 9
        routed = route_by_cost(costs, jobs=2)
        half = (len(costs) + 1) // 2
        contiguous = [list(range(half)), list(range(half, len(costs)))]
        assert _makespan(routed, costs) < _makespan(contiguous, costs)

    def test_lpt_bound_holds(self):
        # Greedy LPT is within 4/3 of the optimal makespan; check a
        # conservative 3/2 bound against the trivial lower bounds.
        costs = [7.0, 5.0, 4.0, 3.0, 3.0, 2.0, 2.0]
        for jobs in (2, 3, 4):
            assignment = route_by_cost(costs, jobs)
            lower = max(max(costs), sum(costs) / jobs)
            assert _makespan(assignment, costs) <= 1.5 * lower


class TestRouterCostWeight:
    def test_weight_is_graph_coverage_fraction(self, company_db):
        engine = KeywordSearchEngine(company_db, shards=2)
        router = engine.router()
        assert router is not None
        weight = router.cost_weight(["smith", "xml"], "and")
        assert 0.0 < weight <= 1.0

    def test_unroutable_query_is_near_free(self, company_db):
        engine = KeywordSearchEngine(company_db, shards=2)
        router = engine.router()
        weight = router.cost_weight(["zzznothing"], "and")
        assert 0.0 < weight < 0.1

    def test_narrow_route_weighs_less_than_broad(self, company_db):
        engine = KeywordSearchEngine(company_db, shards=2)
        router = engine.router()
        # OR over the same keywords routes to a superset of shards.
        narrow = router.cost_weight(["smith", "xml"], "and")
        broad = router.cost_weight(["smith", "xml"], "or")
        assert broad >= narrow


class TestBatchRouting:
    def test_pool_batch_records_cost_assignment(self, company_db, tmp_path):
        path = str(tmp_path / "route.snap")
        KeywordSearchEngine(company_db).save(path)
        engine = KeywordSearchEngine.open(path, adaptive=True)
        queries = ["Smith XML", "Brown CS", "Smith Brown", "Research Smith"]
        try:
            engine.search_batch(queries, top_k=3, jobs=2)
            searcher = engine._searcher
            assert searcher is not None
            assignment = searcher.last_assignment
            flat = sorted(p for chunk in assignment for p in chunk)
            assert flat == list(range(len(queries)))
            for chunk in assignment:
                assert chunk == sorted(chunk)
        finally:
            engine.close_pool()
            engine.close()
