"""Calibration persistence: the learned table rides the snapshot."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.relational.statistics import DatabaseStatistics


@pytest.fixture
def warmed(company_db):
    """An adaptive engine that has observed a few runs."""
    engine = KeywordSearchEngine(company_db, adaptive=True)
    for query in ("Smith XML", "Brown CS", "Smith Brown XML"):
        engine.search(query, top_k=3)
    assert engine.calibration.updates > 0
    return engine


def test_search_populates_calibration(warmed):
    table = warmed.calibration.to_dict()
    assert "paths" in table or "networks" in table
    for cell in table.values():
        assert cell["count"] >= 1
        assert cell["predicted"] > 0


def test_snapshot_roundtrips_calibration(warmed, tmp_path):
    path = str(tmp_path / "cal.snap")
    warmed.save(path)
    restored = KeywordSearchEngine.open(path)
    try:
        # The loader is lazy: the table fills on first planner use.
        restored.query_cost("Smith XML")
        assert restored.calibration.to_dict() == warmed.calibration.to_dict()
        for kind in warmed.calibration.to_dict():
            assert restored.calibration.factor(kind) == pytest.approx(
                warmed.calibration.factor(kind))
    finally:
        restored.close()


def test_planning_loads_persisted_calibration(warmed, tmp_path):
    path = str(tmp_path / "cal2.snap")
    warmed.save(path)
    restored = KeywordSearchEngine.open(path)
    try:
        plan, __ = restored._plan("Smith XML", None, "and")
        assert plan.estimates  # annotation forced the lazy load
        assert len(restored.calibration) == len(warmed.calibration)
    finally:
        restored.close()


def test_old_snapshots_without_calibration_restore_empty(company_db,
                                                         tmp_path):
    path = str(tmp_path / "old.snap")
    KeywordSearchEngine(company_db).save(path)  # never searched: no table
    restored = KeywordSearchEngine.open(path)
    try:
        restored.query_cost("Smith XML")
        assert len(restored.calibration) == 0
        assert restored.search("Smith XML", top_k=3)
    finally:
        restored.close()


def test_statistics_dict_roundtrip_keeps_calibration(company_db):
    payload = {"paths": {"predicted": 10.0, "observed": 4.0, "count": 2.0}}
    statistics = DatabaseStatistics(company_db)
    statistics.calibration = payload
    data = statistics.to_dict()
    assert data["calibration"] == payload
    restored = DatabaseStatistics.from_dict(company_db, data)
    assert restored.calibration == payload
    # An empty table serialises to nothing and restores to nothing.
    bare = DatabaseStatistics(company_db).to_dict()
    assert "calibration" not in bare
    assert DatabaseStatistics.from_dict(company_db, bare).calibration == {}


def test_static_engine_does_not_calibrate(company_db):
    engine = KeywordSearchEngine(company_db, adaptive=False)
    engine.search("Smith XML", top_k=3)
    assert engine.calibration.updates == 0
