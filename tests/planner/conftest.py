"""Planner suite fixtures.

This suite exercises the *adaptive* machinery explicitly, so the
global ``REPRO_STATIC_PLAN`` escape hatch is cleared around every test
— otherwise an ambient setting would silently turn the adaptive leg of
each differential static.  Tests of the hatch itself re-set it via
``monkeypatch.setenv``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _clear_static_plan_env(monkeypatch):
    monkeypatch.delenv("REPRO_STATIC_PLAN", raising=False)
