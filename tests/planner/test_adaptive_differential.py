"""Differential oracle: adaptive planning is answer-invisible.

The adaptive planner may only change *how hard* the engine works —
enumeration order inside the pushdown heaps, provably-empty units
skipped, batches routed by cost.  Every answer, score and rank must
stay bit-identical to the static planner across cores, semantics,
top-k cuts, shards, snapshot restore and the worker pool.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import (
    SkewedWorkloadConfig,
    generate_skewed_workload,
)

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=4)


def snap(results):
    return [(r.render(), r.score, r.rank) for r in results]


@pytest.fixture(scope="module")
def skewed():
    """A skewed synthetic database plus its workload queries."""
    database = generate_company_like(
        SyntheticConfig(
            departments=4,
            projects_per_department=2,
            employees_per_department=5,
            works_on_per_employee=2,
            dependents_per_employee=0.5,
            seed=11,
        )
    )
    queries = generate_skewed_workload(
        database,
        SkewedWorkloadConfig(queries=8, keyword_pool=6, max_matches=8,
                             seed=5),
    )
    return database, [query.text for query in queries]


@pytest.mark.parametrize("core", ["csr", "fast", "reference"])
@pytest.mark.parametrize("semantics", ["and", "or"])
def test_adaptive_matches_static_across_cores(skewed, core, semantics):
    database, texts = skewed
    adaptive = KeywordSearchEngine(database, core=core, adaptive=True)
    static = KeywordSearchEngine(database, core=core, adaptive=False)
    assert adaptive.adaptive and not static.adaptive
    for text in texts[:4]:
        for top_k in (None, 3):
            expected = snap(static.search(
                text, limits=_LIMITS, top_k=top_k, semantics=semantics))
            observed = snap(adaptive.search(
                text, limits=_LIMITS, top_k=top_k, semantics=semantics))
            assert observed == expected


def test_adaptive_matches_static_with_shards(skewed):
    database, texts = skewed
    adaptive = KeywordSearchEngine(database, shards=3, adaptive=True)
    static = KeywordSearchEngine(database, shards=3, adaptive=False)
    for text in texts:
        assert snap(adaptive.search(text, limits=_LIMITS, top_k=5)) == snap(
            static.search(text, limits=_LIMITS, top_k=5))


def test_adaptive_prunes_and_enumerates_less(skewed):
    """The pushdown leg: fewer kernel enumerations, identical answers."""
    database, texts = skewed
    adaptive = KeywordSearchEngine(database, adaptive=True)
    static = KeywordSearchEngine(database, adaptive=False)
    pruned = 0
    for text in texts:
        expected = snap(static.search(text, limits=_LIMITS, top_k=2))
        observed = snap(adaptive.search(text, limits=_LIMITS, top_k=2))
        assert observed == expected
        pruned += adaptive.last_stats.pruned
    assert pruned > 0, "skewed workload should skip provably-empty units"
    enumerated = (adaptive.traversal_cache.paths_enumerated
                  + adaptive.traversal_cache.trees_enumerated)
    baseline = (static.traversal_cache.paths_enumerated
                + static.traversal_cache.trees_enumerated)
    assert enumerated <= baseline


def test_adaptive_matches_static_through_snapshot(skewed, tmp_path):
    database, texts = skewed
    origin = KeywordSearchEngine(database, adaptive=True)
    for text in texts[:4]:
        origin.search(text, limits=_LIMITS, top_k=3)
    assert origin.calibration.updates > 0
    path = str(tmp_path / "skewed.snap")
    origin.save(path)

    restored = KeywordSearchEngine.open(path, adaptive=True)
    static = KeywordSearchEngine.open(path, adaptive=False)
    try:
        for text in texts:
            assert snap(restored.search(text, limits=_LIMITS, top_k=3)) \
                == snap(static.search(text, limits=_LIMITS, top_k=3))
    finally:
        restored.close()
        static.close()


def test_adaptive_matches_static_through_pool(skewed, tmp_path):
    database, texts = skewed
    origin = KeywordSearchEngine(database)
    origin.save(str(tmp_path / "pool.snap"))
    adaptive = KeywordSearchEngine.open(str(tmp_path / "pool.snap"),
                                        adaptive=True)
    static = KeywordSearchEngine.open(str(tmp_path / "pool.snap"),
                                      adaptive=False)
    try:
        batch = texts[:6]
        expected = static.search_batch(batch, limits=_LIMITS, top_k=3)
        observed = adaptive.search_batch(batch, limits=_LIMITS, top_k=3,
                                         jobs=2)
        assert [snap(results) for results in observed] \
            == [snap(results) for results in expected]
    finally:
        adaptive.close_pool()
        adaptive.close()
        static.close()


def test_env_escape_hatch_freezes_the_process(skewed, monkeypatch):
    database, __ = skewed
    monkeypatch.setenv("REPRO_STATIC_PLAN", "1")
    engine = KeywordSearchEngine(database, adaptive=True)
    assert engine.adaptive is False
    plan, __ = engine._plan("sk1 sk2", None, "and")
    assert plan.estimates == ()
