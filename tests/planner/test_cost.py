"""Unit tests for the planner cost model and calibration table."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.planner import (
    DEFAULT_FANOUT,
    STATIC_PLAN_ENV,
    CalibrationTable,
    CostModel,
    UnitEstimate,
    resolve_adaptive,
)


class TestResolveAdaptive:
    def test_default_is_adaptive(self, monkeypatch):
        monkeypatch.delenv(STATIC_PLAN_ENV, raising=False)
        assert resolve_adaptive() is True
        assert resolve_adaptive(None) is True

    def test_explicit_flag_wins_over_default(self, monkeypatch):
        monkeypatch.delenv(STATIC_PLAN_ENV, raising=False)
        assert resolve_adaptive(False) is False
        assert resolve_adaptive(True) is True

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_env_forces_static(self, monkeypatch, value):
        monkeypatch.setenv(STATIC_PLAN_ENV, value)
        assert resolve_adaptive() is False
        assert resolve_adaptive(True) is False

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsey_env_is_ignored(self, monkeypatch, value):
        monkeypatch.setenv(STATIC_PLAN_ENV, value)
        assert resolve_adaptive() is True
        assert resolve_adaptive(False) is False

    def test_engine_honours_env(self, monkeypatch, company_db):
        monkeypatch.setenv(STATIC_PLAN_ENV, "1")
        engine = KeywordSearchEngine(company_db)
        assert engine.adaptive is False
        monkeypatch.delenv(STATIC_PLAN_ENV)
        assert KeywordSearchEngine(company_db).adaptive is True


class TestCalibrationTable:
    def test_unseen_kind_has_neutral_factor(self):
        table = CalibrationTable()
        assert table.factor("paths") == 1.0
        assert len(table) == 0
        assert table.updates == 0

    def test_factor_is_observed_over_predicted(self):
        table = CalibrationTable()
        table.observe("paths", predicted=10.0, observed=5.0)
        assert table.factor("paths") == pytest.approx(0.5)
        table.observe("paths", predicted=10.0, observed=15.0)
        assert table.factor("paths") == pytest.approx(1.0)
        assert table.updates == 2

    def test_factor_is_clamped(self):
        table = CalibrationTable()
        table.observe("paths", 1.0, 1e9)
        assert table.factor("paths") == 100.0
        table = CalibrationTable()
        table.observe("paths", 1e9, 0.0)
        assert table.factor("paths") == 0.01

    def test_nonpositive_predictions_are_ignored(self):
        table = CalibrationTable()
        table.observe("paths", 0.0, 50.0)
        table.observe("paths", -3.0, 50.0)
        assert len(table) == 0

    def test_observe_is_commutative(self):
        pairs = [(10.0, 4.0), (2.0, 9.0), (7.0, 7.0)]
        forward, backward = CalibrationTable(), CalibrationTable()
        for predicted, observed in pairs:
            forward.observe("networks", predicted, observed)
        for predicted, observed in reversed(pairs):
            backward.observe("networks", predicted, observed)
        assert forward.to_dict() == backward.to_dict()

    def test_roundtrip_and_additive_load(self):
        table = CalibrationTable()
        table.observe("paths", 10.0, 5.0)
        copy = CalibrationTable()
        copy.load(table.to_dict())
        assert copy.to_dict() == table.to_dict()
        copy.load(table.to_dict())  # additive: doubles the sums
        assert copy.updates == 2
        assert copy.factor("paths") == pytest.approx(0.5)  # ratio unchanged


class TestCostModel:
    def test_fanout_falls_back_without_statistics(self):
        assert CostModel().fanout() == DEFAULT_FANOUT

    def test_pair_plan_estimates_align_with_sources(self, engine):
        plan, __ = engine._plan("Smith XML", None, "and")
        model = CostModel(index=engine.index,
                          statistics=lambda: engine.statistics)
        estimates = model.estimate_plan(plan)
        assert len(estimates) == len(plan.sources)
        assert all(isinstance(entry, UnitEstimate) for entry in estimates)
        (pair,) = estimates
        assert pair.kind == "paths"
        n1, n2 = (len(match) for match in plan.matches)
        assert pair.units == n1 * n2
        assert pair.est_cost >= pair.est_candidates >= pair.units

    def test_or_plan_estimates_cover_every_source(self, engine):
        plan, __ = engine._plan("Smith Brown XML", None, "or")
        model = CostModel(index=engine.index)
        estimates = model.estimate_plan(plan)
        assert [e.kind for e in estimates] == [
            "scan" if type(op).__name__ == "SingleScan"
            else "paths" if type(op).__name__ == "PairPaths"
            else "networks"
            for op in plan.sources
        ]
        scan = estimates[0]
        assert scan.est_candidates == scan.units  # scans are exact

    def test_calibration_scales_estimates(self, engine):
        plan, __ = engine._plan("Smith XML", None, "and")
        table = CalibrationTable()
        table.observe("paths", 10.0, 2.5)  # factor 0.25
        plain = CostModel(index=engine.index).estimate_plan(plan)[0]
        tuned = CostModel(index=engine.index,
                          calibration=table).estimate_plan(plan)[0]
        assert tuned.est_candidates == pytest.approx(
            plain.est_candidates * 0.25)

    def test_annotate_attaches_estimates_without_changing_ops(self, engine):
        plan, __ = engine._plan("Smith XML", None, "and")
        annotated = CostModel(index=engine.index).annotate(plan)
        assert annotated.sources == plan.sources
        assert annotated.matches == plan.matches
        assert len(annotated.estimates) == len(plan.sources)


class TestQueryCost:
    def test_zero_match_and_query_is_cheap(self, engine):
        cost = CostModel(index=engine.index).query_cost(
            ["smith", "zzznothing"], "and")
        assert cost == 1.0

    def test_heavier_postings_cost_more(self, engine):
        model = CostModel(index=engine.index)
        hot = model.query_cost(["smith", "xml"], "and")
        cold = model.query_cost(["smith", "canada"], "and")
        assert hot > cold > 0

    def test_or_semantics_never_cheaper_than_and(self, engine):
        model = CostModel(index=engine.index)
        keywords = ["smith", "brown", "xml"]
        assert (model.query_cost(keywords, "or")
                >= model.query_cost(keywords, "and"))

    def test_engine_query_cost_handles_bad_queries(self, engine):
        assert engine.query_cost("") == 1.0
        assert engine.query_cost("smith xml") > 1.0


class TestPostingLength:
    def test_matches_materialised_postings(self, engine):
        index = engine.index
        for token in ("smith", "xml", "brown"):
            assert index.posting_length(token) == len(index.postings(token))

    def test_unknown_token_is_zero(self, engine):
        assert engine.index.posting_length("zzznothing") == 0

    def test_lazy_snapshot_postings_stay_undecoded(self, company_db, tmp_path):
        path = str(tmp_path / "db.snap")
        KeywordSearchEngine(company_db).save(path)
        opened = KeywordSearchEngine.open(path)
        try:
            length = opened.index.posting_length("smith")
            assert length == len(
                KeywordSearchEngine(company_db).index.postings("smith"))
            # The cheap accessor must not have decoded the posting list.
            assert not dict.__contains__(opened.index._postings, "smith")
        finally:
            opened.close()
