"""Unit tests for bounded path and joining-tree enumeration."""

import pytest

from repro.errors import SearchLimitError
from repro.graph.traversal import enumerate_joining_trees, enumerate_simple_paths
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


def path_labels(company_db, steps):
    labels = [company_db.tuple(steps[0].source).label]
    labels.extend(company_db.tuple(step.target).label for step in steps)
    return labels


class TestSimplePaths:
    def test_direct_path(self, data_graph, company_db):
        paths = list(
            enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 1
            )
        )
        assert [path_labels(company_db, p) for p in paths] == [["d1", "e1"]]

    def test_paper_pair_d1_e1_up_to_three(self, data_graph, company_db):
        paths = list(
            enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 3
            )
        )
        rendered = {tuple(path_labels(company_db, p)) for p in paths}
        assert rendered == {
            ("d1", "e1"),
            ("d1", "p1", "w_f1", "e1"),   # the paper's connection 4
        }

    def test_paths_ordered_by_length(self, data_graph, company_db):
        paths = list(
            enumerate_simple_paths(
                data_graph, tid("PROJECT", "p1"), tid("EMPLOYEE", "e1"), 4
            )
        )
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_paths_are_simple(self, data_graph):
        for path in enumerate_simple_paths(
            data_graph, tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2"), 5
        ):
            nodes = [path[0].source] + [s.target for s in path]
            assert len(nodes) == len(set(nodes))

    def test_zero_budget_yields_nothing(self, data_graph):
        assert list(
            enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 0
            )
        ) == []

    def test_unknown_node_yields_nothing(self, data_graph):
        assert list(
            enumerate_simple_paths(
                data_graph, tid("EMPLOYEE", "e99"), tid("EMPLOYEE", "e1"), 3
            )
        ) == []

    def test_budget_exceeded_raises(self, data_graph):
        with pytest.raises(SearchLimitError):
            list(
                enumerate_simple_paths(
                    data_graph,
                    tid("DEPARTMENT", "d2"),
                    tid("EMPLOYEE", "e2"),
                    5,
                    max_paths=1,
                )
            )

    def test_deterministic(self, data_graph, company_db):
        def run():
            return [
                tuple(path_labels(company_db, p))
                for p in enumerate_simple_paths(
                    data_graph, tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e4"), 4
                )
            ]

        assert run() == run()

    def test_steps_are_connected(self, data_graph):
        for path in enumerate_simple_paths(
            data_graph, tid("DEPARTMENT", "d1"), tid("DEPENDENT", "t1"), 4
        ):
            for previous, step in zip(path, path[1:]):
                assert previous.target == step.source


class TestJoiningTrees:
    def test_pair_of_required_tuples(self, data_graph):
        trees = list(
            enumerate_joining_trees(
                data_graph,
                [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")],
                max_tuples=2,
            )
        )
        assert trees == [
            frozenset({tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")})
        ]

    def test_all_trees_connected_and_contain_required(self, data_graph):
        required = [tid("EMPLOYEE", "e1"), tid("PROJECT", "p1")]
        for tree in enumerate_joining_trees(data_graph, required, max_tuples=4):
            assert set(required) <= tree
            assert data_graph.is_connected_set(tree)

    def test_smaller_trees_first(self, data_graph):
        sizes = [
            len(tree)
            for tree in enumerate_joining_trees(
                data_graph,
                [tid("EMPLOYEE", "e1"), tid("PROJECT", "p1")],
                max_tuples=5,
            )
        ]
        assert sizes == sorted(sizes)

    def test_disconnected_required_yields_nothing(self, data_graph):
        trees = list(
            enumerate_joining_trees(
                data_graph,
                [tid("DEPARTMENT", "d3"), tid("EMPLOYEE", "e1")],
                max_tuples=6,
            )
        )
        assert trees == []

    def test_single_required_tuple(self, data_graph):
        trees = list(
            enumerate_joining_trees(
                data_graph, [tid("DEPARTMENT", "d3")], max_tuples=1
            )
        )
        assert trees == [frozenset({tid("DEPARTMENT", "d3")})]

    def test_empty_required_yields_nothing(self, data_graph):
        assert list(
            enumerate_joining_trees(data_graph, [], max_tuples=3)
        ) == []

    def test_unknown_required_yields_nothing(self, data_graph):
        assert list(
            enumerate_joining_trees(
                data_graph, [tid("EMPLOYEE", "e99")], max_tuples=3
            )
        ) == []

    def test_budget_exceeded_raises(self, data_graph):
        with pytest.raises(SearchLimitError):
            list(
                enumerate_joining_trees(
                    data_graph,
                    [tid("DEPARTMENT", "d1")],
                    max_tuples=6,
                    max_results=2,
                )
            )

    def test_no_duplicate_trees(self, data_graph):
        trees = list(
            enumerate_joining_trees(
                data_graph,
                [tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2")],
                max_tuples=5,
            )
        )
        assert len(trees) == len(set(trees))

    def test_three_required_tuples(self, data_graph):
        required = [
            tid("DEPARTMENT", "d1"),
            tid("EMPLOYEE", "e1"),
            tid("PROJECT", "p1"),
        ]
        trees = list(
            enumerate_joining_trees(data_graph, required, max_tuples=4)
        )
        # d1 joins e1 and p1 directly, so the required set itself is a tree;
        # adding w_f1 gives a four-tuple alternative.
        assert frozenset(required) in trees
        assert frozenset(required) | {tid("WORKS_FOR", "e1", "p1")} in trees
