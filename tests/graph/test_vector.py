"""Differential tests: the vector backend vs the stdlib reference core.

The stdlib scalar loops define the semantics; every vector kernel must
reproduce them bit for bit — same distance rows, same component labels,
same frontier expansions — on clean, patched, tombstoned and compacted
graphs alike.  When numpy is absent (or ``REPRO_NO_VECTOR`` forces the
fallback) these tests still run: both sides then resolve to the scalar
backend and the comparison degenerates to scalar-vs-scalar, which keeps
the no-numpy CI leg meaningful without skips.
"""

import os
import subprocess
import sys

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.errors import QueryError
from repro.graph.csr import FrozenGraph
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.graph.vector import BACKEND, ENV_FLAG, ScalarBackend, get_backend
from repro.live.changes import Delete, Insert, Update, apply_to_database
from repro.live.maintain import apply_changeset
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture(scope="module")
def synthetic_graph():
    database = generate_company_like(
        SyntheticConfig(
            departments=5,
            projects_per_department=3,
            employees_per_department=6,
            works_on_per_employee=2,
            seed=41,
        )
    )
    return DataGraph(database)


def _pair(graph):
    """A scalar-forced and a default-backend view of the same graph."""
    return FrozenGraph(graph, vector=False), FrozenGraph(graph)


def _assert_identical(scalar, vector):
    sources = list(range(0, vector.capacity, 3))
    block = vector.distances_block(sources)
    for node in sources:
        assert block[node] == scalar.distances(node), node
    assert vector.components() == scalar.components()


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_env_flag_forces_stdlib(self):
        code = (
            "from repro.graph.vector import BACKEND; "
            "print(BACKEND.name, BACKEND.vectorized)"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env[ENV_FLAG] = "1"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
        assert out.stdout.split() == ["stdlib", "False"]

    def test_vector_false_forces_scalar(self):
        assert isinstance(get_backend(False), ScalarBackend)
        assert get_backend(False).vectorized is False

    def test_vector_none_takes_module_default(self):
        assert get_backend(None) is BACKEND
        assert get_backend() is BACKEND

    def test_vector_true_demands_vectorized(self):
        code = (
            "from repro.graph.vector import get_backend\n"
            "from repro.errors import QueryError\n"
            "try:\n"
            "    get_backend(True)\n"
            "except QueryError as error:\n"
            "    print('raised', error.context['backend'])\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env[ENV_FLAG] = "1"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
        assert out.stdout.split() == ["raised", "stdlib"]

    def test_vector_true_when_available(self):
        if BACKEND.vectorized:
            assert get_backend(True) is BACKEND
        else:
            with pytest.raises(QueryError):
                get_backend(True)

    def test_frozen_graph_reports_backend(self, data_graph):
        assert FrozenGraph(data_graph, vector=False).backend_name == "stdlib"
        assert FrozenGraph(data_graph).backend_name == BACKEND.name


# ----------------------------------------------------------------------
# distance blocks / components / frontiers vs the scalar reference
# ----------------------------------------------------------------------
class TestVectorKernelsIdentical:
    def test_clean_graph(self, synthetic_graph):
        scalar, vector = _pair(synthetic_graph)
        _assert_identical(scalar, vector)

    def test_block_equals_per_source_rows(self, synthetic_graph):
        scalar, vector = _pair(synthetic_graph)
        sources = list(range(0, vector.capacity, 2))
        block = vector.distances_block(sources)
        assert sorted(block) == sorted(set(sources))
        for node in sources:
            assert block[node] == scalar.distances(node)
        # Duplicate sources collapse; cached rows are served verbatim.
        again = vector.distances_block([sources[0], sources[0], sources[1]])
        assert again[sources[0]] is block[sources[0]]

    def test_patched_graph(self, company_db):
        graph = DataGraph(company_db)
        scalar_cache = TraversalCache(graph, vector=False)
        vector_cache = TraversalCache(graph)
        scalar, vector = scalar_cache.frozen(), vector_cache.frozen()
        batches = [
            [Insert("DEPENDENT", {"ID": "v1", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Zoe"})],
            [Update(tid("DEPENDENT", "t2"), {"ESSN": "e1"})],
            [Delete(tid("DEPENDENT", "t1"))],
        ]
        for batch in batches:
            changeset = apply_to_database(company_db, batch)
            apply_changeset(changeset, company_db, data_graph=graph,
                            traversal_cache=scalar_cache)
            vector.apply_changeset(changeset)
            _assert_identical(scalar, vector)
        assert vector._override  # the patches really took the patch path

    def test_tombstoned_graph(self, company_db):
        graph = DataGraph(company_db)
        scalar, vector = _pair(graph)
        changeset = apply_to_database(
            company_db, [Delete(tid("DEPENDENT", "t1"))]
        )
        apply_changeset(changeset, company_db, data_graph=graph)
        scalar.apply_changeset(changeset)
        vector.apply_changeset(changeset)
        dead = scalar.components().count(-1)
        assert dead >= 1  # the tombstone labels -1 on both backends
        _assert_identical(scalar, vector)

    def test_compacted_graph(self, company_db):
        graph = DataGraph(company_db)
        scalar, vector = _pair(graph)
        for frozen in (scalar, vector):
            frozen.compaction_threshold = 0.0
            frozen.min_compaction_nodes = 1
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "v2", "ESSN": "e2",
                                  "DEPENDENT_NAME": "Max"})],
        )
        apply_changeset(changeset, company_db, data_graph=graph)
        scalar.apply_changeset(changeset)
        vector.apply_changeset(changeset)
        assert scalar.compactions == vector.compactions == 1
        _assert_identical(scalar, vector)

    def test_frontier_neighbour_ints(self, synthetic_graph):
        scalar, vector = _pair(synthetic_graph)
        vector.vector_frontier_min = 1  # force the gather path if present
        nodes = range(vector.capacity)
        for members in ({0}, set(nodes[:7]), set(list(nodes)[::5])):
            assert (
                vector.frontier_neighbour_ints(members)
                == scalar.frontier_neighbour_ints(members)
            )

    def test_chunked_sweep_matches_scalar(self, synthetic_graph):
        # More sources than one sweep holds exercises the chunk loop.
        scalar, vector = _pair(synthetic_graph)
        if not vector._backend.vectorized:
            pytest.skip("stdlib backend has no sweep to chunk")
        vector._backend.max_sources_per_sweep  # sanity: attribute exists
        sources = list(range(vector.capacity))
        block = vector.distances_block(sources)
        for node in sources[:: max(1, len(sources) // 50)]:
            assert block[node] == scalar.distances(node)


# ----------------------------------------------------------------------
# LRU distance caches
# ----------------------------------------------------------------------
class TestDistanceCacheLru:
    def test_frozen_graph_hit_refreshes_entry(self, data_graph):
        frozen = FrozenGraph(data_graph)
        frozen.max_distance_maps = 3
        a, b, c, d = 0, 1, 2, 3
        for node in (a, b, c):
            frozen.distances(node)
        frozen.distances(a)  # refresh: a is now most recent
        frozen.distances(d)  # evicts b (the true LRU), not a
        assert a in frozen._distances
        assert b not in frozen._distances
        assert set(frozen._distances) == {a, c, d}

    def test_frozen_block_hits_refresh_entries(self, data_graph):
        frozen = FrozenGraph(data_graph)
        frozen.max_distance_maps = 3
        frozen.distances_block([0, 1, 2])
        frozen.distances_block([0])  # refresh via the block path
        frozen.distances(3)
        assert 0 in frozen._distances
        assert 1 not in frozen._distances

    def test_traversal_cache_hit_refreshes_entry(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.max_distance_maps = 3
        tids = sorted(data_graph.graph.nodes, key=str)[:4]
        a, b, c, d = tids
        for t in (a, b, c):
            cache.distances(t)
        cache.distances(a)
        cache.distances(d)
        assert a in cache._distances
        assert b not in cache._distances


# ----------------------------------------------------------------------
# engine level
# ----------------------------------------------------------------------
class TestEngineVectorOption:
    def test_search_identical_across_backends(self, company_db):
        queries = ["Smith XML", "Smith Alice Cs", "XML"]
        limits = SearchLimits(max_rdb_length=4)
        rendered = {}
        for vector in (False, None):
            engine = KeywordSearchEngine(
                company_db, core="csr", vector=vector
            )
            rendered[vector] = [
                [(r.render(), r.score) for r in engine.search(q, limits=limits)]
                for q in queries
            ]
        assert rendered[False] == rendered[None]

    def test_engine_threads_vector_to_frozen_graph(self, company_db):
        engine = KeywordSearchEngine(company_db, core="csr", vector=False)
        assert engine.traversal_cache.frozen().backend_name == "stdlib"
        default = KeywordSearchEngine(company_db, core="csr")
        assert default.traversal_cache.frozen().backend_name == BACKEND.name
