"""Unit tests for the schema graph."""

import pytest

from repro.er.cardinality import Cardinality
from repro.errors import UnknownRelationError


class TestStructure:
    def test_nodes_are_relations(self, schema_graph):
        assert set(schema_graph.graph.nodes) == {
            "DEPARTMENT", "PROJECT", "EMPLOYEE", "WORKS_FOR", "DEPENDENT",
        }

    def test_edges_are_fks(self, schema_graph):
        assert schema_graph.graph.number_of_edges() == 5

    def test_middle_flag_on_nodes(self, schema_graph):
        assert schema_graph.graph.nodes["WORKS_FOR"]["is_middle"]
        assert not schema_graph.graph.nodes["EMPLOYEE"]["is_middle"]

    def test_is_connected(self, schema_graph):
        assert schema_graph.is_connected()

    def test_degree(self, schema_graph):
        assert schema_graph.degree("EMPLOYEE") == 3
        assert schema_graph.degree("DEPENDENT") == 1

    def test_degree_unknown_relation(self, schema_graph):
        with pytest.raises(UnknownRelationError):
            schema_graph.degree("NOPE")


class TestCardinalities:
    def test_read_from_referenced_side(self, schema_graph, db_schema):
        fk = db_schema.foreign_key("fk_employee_department")
        assert schema_graph.edge_cardinality(fk, "DEPARTMENT") == \
            Cardinality.one_to_many()

    def test_read_from_referencing_side(self, schema_graph, db_schema):
        fk = db_schema.foreign_key("fk_employee_department")
        assert schema_graph.edge_cardinality(fk, "EMPLOYEE") == \
            Cardinality.many_to_one()

    def test_unique_fk_is_one_to_one(self, schema_graph, db_schema):
        from repro.relational.schema import ForeignKey

        fk = ForeignKey("u", "EMPLOYEE", ("D_ID",), "DEPARTMENT", ("ID",),
                        unique=True)
        assert schema_graph.edge_cardinality(fk, "EMPLOYEE") == \
            Cardinality.one_to_one()

    def test_stranger_relation_rejected(self, schema_graph, db_schema):
        fk = db_schema.foreign_key("fk_employee_department")
        with pytest.raises(UnknownRelationError):
            schema_graph.edge_cardinality(fk, "PROJECT")


class TestNavigation:
    def test_neighbours(self, schema_graph):
        neighbours = {other for other, __ in schema_graph.neighbours("EMPLOYEE")}
        assert neighbours == {"DEPARTMENT", "WORKS_FOR", "DEPENDENT"}

    def test_neighbours_unknown_relation(self, schema_graph):
        with pytest.raises(UnknownRelationError):
            list(schema_graph.neighbours("NOPE"))

    def test_relation_distance(self, schema_graph):
        assert schema_graph.relation_distance("DEPARTMENT", "EMPLOYEE") == 1
        assert schema_graph.relation_distance("DEPARTMENT", "DEPENDENT") == 2
        assert schema_graph.relation_distance("PROJECT", "DEPENDENT") == 3

    def test_relation_distance_unknown(self, schema_graph):
        with pytest.raises(UnknownRelationError):
            schema_graph.relation_distance("NOPE", "EMPLOYEE")
