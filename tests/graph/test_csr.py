"""Differential tests: the compiled CSR kernel vs both existing cores.

The CSR core's contract is the same bit-identical one the fast core
carries — same paths and trees, same order, same budget errors — plus
one more obligation: an incrementally *patched* ``FrozenGraph`` must
answer exactly like a freshly compiled one.
"""

import itertools

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections, find_joining_networks
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.errors import QueryError, SearchLimitError
from repro.graph.csr import (
    CORES,
    FrozenGraph,
    csr_enumerate_joining_trees,
    csr_enumerate_simple_paths,
    resolve_core,
)
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import (
    _sort_key,
    enumerate_joining_trees,
    enumerate_simple_paths,
)
from repro.live.changes import Delete, Insert, Update, apply_to_database
from repro.live.maintain import apply_changeset
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture(scope="module")
def planted_synthetic():
    database = generate_company_like(
        SyntheticConfig(
            departments=4,
            projects_per_department=2,
            employees_per_department=5,
            works_on_per_employee=2,
            seed=29,
        )
    )
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 2, seed=3)
    return database


@pytest.fixture(scope="module")
def synthetic_graph(planted_synthetic):
    return DataGraph(planted_synthetic)


class TestResolveCore:
    def test_defaults(self):
        assert resolve_core() == "csr"
        assert resolve_core(use_fast_traversal=False) == "reference"
        for core in CORES:
            assert resolve_core(core=core) == core
        # Explicit core wins over the legacy boolean.
        assert resolve_core(use_fast_traversal=False, core="csr") == "csr"

    def test_unknown_core_rejected(self):
        with pytest.raises(QueryError):
            resolve_core(core="turbo")


class TestFrozenStructure:
    def test_interning_is_sort_key_dense(self, data_graph):
        frozen = FrozenGraph(data_graph)
        tids = sorted(data_graph.graph.nodes, key=_sort_key)
        assert frozen.capacity == len(tids)
        assert frozen.live_count() == len(tids)
        assert [frozen.node_of(t) for t in tids] == list(range(len(tids)))
        assert [frozen.tid_of(i) for i in range(len(tids))] == tids

    def test_csr_arrays_consistent(self, data_graph):
        frozen = FrozenGraph(data_graph)
        assert len(frozen._offsets) == frozen.capacity + 1
        assert frozen._offsets[-1] == len(frozen._targets)
        # Every stored edge appears once per endpoint (undirected).
        assert len(frozen._targets) == 2 * data_graph.number_of_edges()
        assert len(frozen._edge_keys) == len(frozen._targets)
        assert len(frozen._edge_data) == len(frozen._targets)
        assert frozen.nbytes() > 0

    def test_rows_sorted_in_expansion_order(self, data_graph):
        frozen = FrozenGraph(data_graph)
        for node in range(frozen.capacity):
            row_t, row_k, __, start, end = frozen._row(node)
            entries = [
                (_sort_key(frozen.tid_of(row_t[i])), row_k[i])
                for i in range(start, end)
            ]
            assert entries == sorted(entries)

    def test_distances_agree_with_networkx(self, synthetic_graph):
        import networkx as nx

        frozen = FrozenGraph(synthetic_graph)
        node = sorted(synthetic_graph.graph.nodes, key=str)[0]
        source = frozen.node_of(node)
        row = frozen.distances(source)
        expected = nx.single_source_shortest_path_length(
            synthetic_graph.graph, node
        )
        for other, distance in expected.items():
            assert row[frozen.node_of(other)] == distance
        unreachable = [
            i for i in range(frozen.capacity)
            if frozen.tid_of(i) not in expected
        ]
        for i in unreachable:
            assert row[i] > synthetic_graph.number_of_nodes()

    def test_components_partition_reachability(self, data_graph):
        import networkx as nx

        frozen = FrozenGraph(data_graph)
        labels = frozen.components()
        for component in nx.connected_components(nx.Graph(data_graph.graph)):
            ints = {frozen.node_of(t) for t in component}
            assert len({labels[i] for i in ints}) == 1
        # Distinct components get distinct labels.
        count = len(list(nx.connected_components(nx.Graph(data_graph.graph))))
        assert len({labels[i] for i in range(frozen.capacity)}) == count

    def test_distance_rows_are_bounded(self, synthetic_graph):
        frozen = FrozenGraph(synthetic_graph)
        frozen.max_distance_maps = 3
        for node in range(5):
            frozen.distances(node)
        assert len(frozen._distances) == 3


class TestPathParity:
    def test_company_all_pairs_all_cores(self, data_graph):
        cache = TraversalCache(data_graph)
        nodes = sorted(data_graph.graph.nodes, key=str)
        for source, target in itertools.permutations(nodes, 2):
            brute = list(enumerate_simple_paths(data_graph, source, target, 4))
            fast = list(
                fast_enumerate_simple_paths(
                    data_graph, source, target, 4, cache=cache
                )
            )
            csr = list(
                csr_enumerate_simple_paths(
                    data_graph, source, target, 4, cache=cache
                )
            )
            assert csr == brute, (source, target)
            assert csr == fast, (source, target)

    def test_synthetic_sampled_pairs(self, synthetic_graph):
        cache = TraversalCache(synthetic_graph)
        nodes = sorted(synthetic_graph.graph.nodes, key=str)
        for source, target in itertools.permutations(nodes[::7], 2):
            brute = list(enumerate_simple_paths(synthetic_graph, source, target, 5))
            csr = list(
                csr_enumerate_simple_paths(
                    synthetic_graph, source, target, 5, cache=cache
                )
            )
            assert csr == brute, (source, target)

    def test_disconnected_unknown_and_zero_budget(self, data_graph):
        assert list(
            csr_enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d3"), tid("EMPLOYEE", "e1"), 5
            )
        ) == []
        assert list(
            csr_enumerate_simple_paths(
                data_graph, tid("EMPLOYEE", "e99"), tid("EMPLOYEE", "e1"), 3
            )
        ) == []
        assert list(
            csr_enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 0
            )
        ) == []

    def test_budget_error_parity(self, data_graph):
        source, target = tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2")

        def consume(enumerate_fn):
            yielded = []
            try:
                for path in enumerate_fn(
                    data_graph, source, target, 5, max_paths=1
                ):
                    yielded.append(path)
            except SearchLimitError as error:
                return yielded, error.context
            raise AssertionError("expected SearchLimitError")

        brute_yielded, brute_context = consume(enumerate_simple_paths)
        csr_yielded, csr_context = consume(csr_enumerate_simple_paths)
        assert csr_yielded == brute_yielded
        assert csr_context == brute_context

    def test_mismatched_cache_is_ignored(self, data_graph, planted_synthetic):
        other_cache = TraversalCache(DataGraph(planted_synthetic))
        brute = list(
            enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 3
            )
        )
        csr = list(
            csr_enumerate_simple_paths(
                data_graph,
                tid("DEPARTMENT", "d1"),
                tid("EMPLOYEE", "e1"),
                3,
                cache=other_cache,
            )
        )
        assert csr == brute
        assert other_cache._frozen is None  # never compiled for the wrong graph


class TestTreeParity:
    def test_company_required_combos(self, data_graph):
        cache = TraversalCache(data_graph)
        nodes = sorted(data_graph.graph.nodes, key=str)
        for combo in itertools.combinations(nodes[:10], 2):
            brute = list(enumerate_joining_trees(data_graph, list(combo), 5))
            csr = list(
                csr_enumerate_joining_trees(
                    data_graph, list(combo), 5, cache=cache
                )
            )
            assert csr == brute, combo

    def test_three_required_and_synthetic(self, data_graph, synthetic_graph):
        required = [
            tid("DEPARTMENT", "d1"),
            tid("EMPLOYEE", "e1"),
            tid("PROJECT", "p1"),
        ]
        brute = list(enumerate_joining_trees(data_graph, required, 5))
        csr = list(csr_enumerate_joining_trees(data_graph, required, 5))
        assert csr == brute
        cache = TraversalCache(synthetic_graph)
        nodes = sorted(synthetic_graph.graph.nodes, key=str)
        for combo in itertools.combinations(nodes[::9], 2):
            brute = list(enumerate_joining_trees(synthetic_graph, list(combo), 4))
            fast = list(
                fast_enumerate_joining_trees(
                    synthetic_graph, list(combo), 4, cache=cache
                )
            )
            csr = list(
                csr_enumerate_joining_trees(
                    synthetic_graph, list(combo), 4, cache=cache
                )
            )
            assert csr == brute, combo
            assert csr == fast, combo

    def test_budget_error_parity(self, data_graph):
        required = [tid("DEPARTMENT", "d1")]
        with pytest.raises(SearchLimitError):
            list(
                csr_enumerate_joining_trees(data_graph, required, 6, max_results=2)
            )


class TestSearchLayerParity:
    def test_find_connections_company(self, engine):
        matches = engine.match("Smith XML")
        limits = SearchLimits(max_rdb_length=4)
        csr = list(
            find_connections(
                engine.data_graph, matches, limits, core="csr",
                cache=engine.traversal_cache,
            )
        )
        brute = list(
            find_connections(
                engine.data_graph, matches, limits, core="reference"
            )
        )
        assert [a.render() for a in csr] == [a.render() for a in brute]

    def test_find_joining_networks_synthetic(self, planted_synthetic):
        engine = KeywordSearchEngine(planted_synthetic)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta", "kwgamma"))
        limits = SearchLimits(max_tuples=5)
        csr = list(
            find_joining_networks(
                engine.data_graph, matches, limits, core="csr",
                cache=engine.traversal_cache,
            )
        )
        brute = list(
            find_joining_networks(
                engine.data_graph, matches, limits, core="reference"
            )
        )
        assert [(n.tuples, n.keyword_tuples) for n in csr] == [
            (n.tuples, n.keyword_tuples) for n in brute
        ]

    def test_engine_core_results_identical(self, planted_synthetic):
        engines = {
            core: KeywordSearchEngine(planted_synthetic, core=core)
            for core in CORES
        }
        assert engines["csr"].core == "csr"
        assert engines["reference"].use_fast_traversal is False
        for query in ("kwalpha kwbeta", "kwbeta kwgamma", "kwalpha kwgamma"):
            limits = SearchLimits(max_rdb_length=5)
            rendered = {
                core: [
                    (r.render(), r.score, r.rank)
                    for r in engine.search(query, limits=limits)
                ]
                for core, engine in engines.items()
            }
            assert rendered["csr"] == rendered["fast"] == rendered["reference"]

    def test_engine_batch_and_stream_identical(self, planted_synthetic):
        csr = KeywordSearchEngine(planted_synthetic, core="csr",
                                  result_cache_entries=0)
        brute = KeywordSearchEngine(planted_synthetic, core="reference",
                                    result_cache_entries=0)
        limits = SearchLimits(max_rdb_length=4)
        queries = ["kwalpha kwbeta", "kwbeta kwgamma", "kwalpha kwbeta"]
        assert [
            [(r.render(), r.score, r.rank) for r in results]
            for results in csr.search_batch(queries, limits=limits)
        ] == [
            [(r.render(), r.score, r.rank) for r in results]
            for results in brute.search_batch(queries, limits=limits)
        ]
        for query in queries:
            assert [
                (r.render(), r.score, r.rank)
                for r in csr.search_stream(query, limits=limits, top_k=4)
            ] == [
                (r.render(), r.score, r.rank)
                for r in brute.search_stream(query, limits=limits, top_k=4)
            ]

    def test_engine_or_semantics_and_topk(self, company_db):
        csr = KeywordSearchEngine(company_db, core="csr")
        brute = KeywordSearchEngine(company_db, core="reference")
        csr_results = csr.search("Smith unicorn XML", semantics="or")
        brute_results = brute.search("Smith unicorn XML", semantics="or")
        assert [(r.render(), r.score) for r in csr_results] == [
            (r.render(), r.score) for r in brute_results
        ]
        assert [
            (r.render(), r.score)
            for r in csr.search("Smith XML", top_k=3)
        ] == [
            (r.render(), r.score)
            for r in brute.search("Smith XML", top_k=3, pushdown=False)
        ]


def _mutation_rounds():
    """Structural mutation batches covering append, tombstone and edge churn."""
    return [
        [Insert("DEPENDENT", {"ID": "z1", "ESSN": "e1",
                              "DEPENDENT_NAME": "Zoe"})],
        [Insert("WORKS_FOR", {"ESSN": "e2", "P_ID": "p1", "HOURS": 5})],
        [Delete(tid("DEPENDENT", "t1"))],
        [Update(tid("DEPENDENT", "t2"), {"ESSN": "e1"})],
        [
            Delete(tid("DEPENDENT", "z1")),
            Insert("DEPENDENT", {"ID": "z2", "ESSN": "e2",
                                 "DEPENDENT_NAME": "Max"}),
        ],
    ]


def _all_enumerations(data_graph, cache=None, max_edges=4, max_tuples=4):
    """Materialise paths and trees over a node sample (order included)."""
    nodes = sorted(data_graph.graph.nodes, key=str)
    out = []
    for source, target in itertools.permutations(nodes[::3], 2):
        out.append(
            list(
                csr_enumerate_simple_paths(
                    data_graph, source, target, max_edges, cache=cache
                )
            )
        )
    for combo in itertools.combinations(nodes[::4], 2):
        out.append(
            list(
                csr_enumerate_joining_trees(
                    data_graph, list(combo), max_tuples, cache=cache
                )
            )
        )
    return out


class TestIncrementalPatching:
    def test_patched_equals_recompiled(self, company_db):
        graph = DataGraph(company_db)
        cache = TraversalCache(graph)
        frozen = cache.frozen()
        _all_enumerations(graph, cache)  # warm distance rows
        for batch in _mutation_rounds():
            changeset = apply_to_database(company_db, batch)
            apply_changeset(
                changeset, company_db, data_graph=graph, traversal_cache=cache
            )
            assert cache.frozen() is frozen  # patched, not recompiled
            patched = _all_enumerations(graph, cache)
            fresh = _all_enumerations(graph, TraversalCache(graph))
            assert patched == fresh
        assert frozen.compactions == 0
        assert frozen._override  # tombstones/appends really went in place

    def test_patch_appends_and_tombstones(self, company_db):
        graph = DataGraph(company_db)
        cache = TraversalCache(graph)
        frozen = cache.frozen()
        before = frozen.capacity
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "z9", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Ada"})],
        )
        apply_changeset(
            changeset, company_db, data_graph=graph, traversal_cache=cache
        )
        assert frozen.capacity == before + 1
        assert frozen._ints_sorted is False
        new_node = frozen.node_of(tid("DEPENDENT", "z9"))
        assert new_node == before
        assert frozen.tid_of(new_node) == tid("DEPENDENT", "z9")
        changeset = apply_to_database(company_db, [Delete(tid("DEPENDENT", "z9"))])
        apply_changeset(
            changeset, company_db, data_graph=graph, traversal_cache=cache
        )
        assert frozen.node_of(tid("DEPENDENT", "z9")) is None
        assert frozen.live_count() == before
        # A tombstoned tuple enumerates nothing, exactly like the
        # reference core on the patched graph.
        assert list(
            csr_enumerate_simple_paths(
                graph, tid("DEPENDENT", "z9"), tid("EMPLOYEE", "e1"), 3,
                cache=cache,
            )
        ) == []

    def test_distance_rows_of_untouched_components_survive(self, company_db):
        graph = DataGraph(company_db)
        frozen = FrozenGraph(graph)
        # d3 sits in its own component in the paper instance.
        isolated = frozen.node_of(tid("DEPARTMENT", "d3"))
        connected = frozen.node_of(tid("EMPLOYEE", "e1"))
        frozen.distances(isolated)
        frozen.distances(connected)
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "z8", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Eve"})],
        )
        apply_changeset(changeset, company_db, data_graph=graph)
        dropped = frozen.apply_changeset(changeset)
        assert dropped == 1
        assert isolated in frozen._distances
        assert connected not in frozen._distances

    def test_compaction_threshold_recompiles(self, company_db):
        graph = DataGraph(company_db)
        frozen = FrozenGraph(graph)
        frozen.compaction_threshold = 0.0
        frozen.min_compaction_nodes = 1
        changeset = apply_to_database(
            company_db,
            [Insert("DEPENDENT", {"ID": "z7", "ESSN": "e1",
                                  "DEPENDENT_NAME": "Kim"})],
        )
        apply_changeset(changeset, company_db, data_graph=graph)
        frozen.apply_changeset(changeset)
        assert frozen.compactions == 1
        assert not frozen._override
        assert frozen._ints_sorted is True
        tids = sorted(graph.graph.nodes, key=_sort_key)
        assert [frozen.tid_of(i) for i in range(frozen.capacity)] == tids

    def test_engine_apply_patches_instead_of_recompiling(self, company_db):
        engine = KeywordSearchEngine(company_db)
        engine.search("Smith XML")
        frozen = engine.traversal_cache._frozen
        assert frozen is not None
        engine.apply(
            [Insert("DEPENDENT", {"ID": "z6", "ESSN": "e3",
                                  "DEPENDENT_NAME": "kwnew"})]
        )
        assert engine.traversal_cache._frozen is frozen
        fresh = KeywordSearchEngine(engine.database)
        for query in ("Smith XML", "kwnew Wong"):
            assert [
                (r.render(), r.score, r.rank) for r in engine.search(query)
            ] == [
                (r.render(), r.score, r.rank) for r in fresh.search(query)
            ]
