"""Differential tests: the pruned traversal core vs the brute-force one.

The fast path's contract is *bit-identical output* — same paths and trees,
same order, same budget errors — so every test here compares it against
:mod:`repro.graph.traversal` directly, on the paper's company instance and
on a planted synthetic database.
"""

import itertools

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections, find_joining_networks
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.errors import SearchLimitError
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import enumerate_joining_trees, enumerate_simple_paths
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture(scope="module")
def planted_synthetic():
    database = generate_company_like(
        SyntheticConfig(
            departments=4,
            projects_per_department=2,
            employees_per_department=5,
            works_on_per_employee=2,
            seed=29,
        )
    )
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 2, seed=3)
    return database


@pytest.fixture(scope="module")
def synthetic_graph(planted_synthetic):
    return DataGraph(planted_synthetic)


class TestPathParity:
    def test_company_all_pairs(self, data_graph):
        cache = TraversalCache(data_graph)
        nodes = sorted(data_graph.graph.nodes, key=str)
        for source, target in itertools.permutations(nodes, 2):
            brute = list(enumerate_simple_paths(data_graph, source, target, 4))
            fast = list(
                fast_enumerate_simple_paths(
                    data_graph, source, target, 4, cache=cache
                )
            )
            assert fast == brute, (source, target)

    def test_synthetic_sampled_pairs(self, synthetic_graph):
        cache = TraversalCache(synthetic_graph)
        nodes = sorted(synthetic_graph.graph.nodes, key=str)
        for source, target in itertools.permutations(nodes[::7], 2):
            brute = list(enumerate_simple_paths(synthetic_graph, source, target, 5))
            fast = list(
                fast_enumerate_simple_paths(
                    synthetic_graph, source, target, 5, cache=cache
                )
            )
            assert fast == brute, (source, target)

    def test_disconnected_pair_yields_nothing(self, data_graph):
        # d3 has no employees/projects in the paper instance.
        assert list(
            fast_enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d3"), tid("EMPLOYEE", "e1"), 5
            )
        ) == []

    def test_unknown_node_yields_nothing(self, data_graph):
        assert list(
            fast_enumerate_simple_paths(
                data_graph, tid("EMPLOYEE", "e99"), tid("EMPLOYEE", "e1"), 3
            )
        ) == []

    def test_zero_budget_yields_nothing(self, data_graph):
        assert list(
            fast_enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 0
            )
        ) == []

    def test_budget_error_parity(self, data_graph):
        source, target = tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2")

        def consume(enumerate_fn):
            yielded = []
            try:
                for path in enumerate_fn(
                    data_graph, source, target, 5, max_paths=1
                ):
                    yielded.append(path)
            except SearchLimitError as error:
                return yielded, error.context
            raise AssertionError("expected SearchLimitError")

        brute_yielded, brute_context = consume(enumerate_simple_paths)
        fast_yielded, fast_context = consume(fast_enumerate_simple_paths)
        assert fast_yielded == brute_yielded
        assert fast_context == brute_context


class TestTreeParity:
    def test_company_required_combos(self, data_graph):
        cache = TraversalCache(data_graph)
        nodes = sorted(data_graph.graph.nodes, key=str)
        for combo in itertools.combinations(nodes[:10], 2):
            brute = list(enumerate_joining_trees(data_graph, list(combo), 5))
            fast = list(
                fast_enumerate_joining_trees(
                    data_graph, list(combo), 5, cache=cache
                )
            )
            assert fast == brute, combo

    def test_company_three_required(self, data_graph):
        required = [
            tid("DEPARTMENT", "d1"),
            tid("EMPLOYEE", "e1"),
            tid("PROJECT", "p1"),
        ]
        brute = list(enumerate_joining_trees(data_graph, required, 5))
        fast = list(fast_enumerate_joining_trees(data_graph, required, 5))
        assert fast == brute
        assert frozenset(required) in fast

    def test_synthetic_sampled_combos(self, synthetic_graph):
        cache = TraversalCache(synthetic_graph)
        nodes = sorted(synthetic_graph.graph.nodes, key=str)
        for combo in itertools.combinations(nodes[::9], 2):
            brute = list(enumerate_joining_trees(synthetic_graph, list(combo), 4))
            fast = list(
                fast_enumerate_joining_trees(
                    synthetic_graph, list(combo), 4, cache=cache
                )
            )
            assert fast == brute, combo

    def test_budget_error_parity(self, data_graph):
        required = [tid("DEPARTMENT", "d1")]
        with pytest.raises(SearchLimitError):
            list(enumerate_joining_trees(data_graph, required, 6, max_results=2))
        with pytest.raises(SearchLimitError):
            list(
                fast_enumerate_joining_trees(data_graph, required, 6, max_results=2)
            )


class TestSearchLayerParity:
    def test_find_connections_company(self, engine):
        matches = engine.match("Smith XML")
        limits = SearchLimits(max_rdb_length=4)
        fast = list(
            find_connections(engine.data_graph, matches, limits)
        )
        brute = list(
            find_connections(
                engine.data_graph, matches, limits, use_fast_traversal=False
            )
        )
        assert [a.render() for a in fast] == [a.render() for a in brute]

    def test_find_joining_networks_synthetic(self, planted_synthetic):
        engine = KeywordSearchEngine(planted_synthetic)
        matches = match_keywords(
            engine.index, ("kwalpha", "kwbeta", "kwgamma")
        )
        limits = SearchLimits(max_tuples=5)
        fast = list(
            find_joining_networks(
                engine.data_graph, matches, limits, cache=engine.traversal_cache
            )
        )
        brute = list(
            find_joining_networks(
                engine.data_graph, matches, limits, use_fast_traversal=False
            )
        )
        assert [(n.tuples, n.keyword_tuples) for n in fast] == [
            (n.tuples, n.keyword_tuples) for n in brute
        ]

    def test_engine_results_identical(self, planted_synthetic):
        fast = KeywordSearchEngine(planted_synthetic)
        brute = KeywordSearchEngine(planted_synthetic, use_fast_traversal=False)
        for query in ("kwalpha kwbeta", "kwbeta kwgamma", "kwalpha kwgamma"):
            limits = SearchLimits(max_rdb_length=5)
            fast_results = fast.search(query, limits=limits)
            brute_results = brute.search(query, limits=limits)
            assert [(r.render(), r.score, r.rank) for r in fast_results] == [
                (r.render(), r.score, r.rank) for r in brute_results
            ]

    def test_engine_or_semantics_identical(self, company_db):
        fast = KeywordSearchEngine(company_db)
        brute = KeywordSearchEngine(company_db, use_fast_traversal=False)
        fast_results = fast.search("Smith unicorn XML", semantics="or")
        brute_results = brute.search("Smith unicorn XML", semantics="or")
        assert [(r.render(), r.score) for r in fast_results] == [
            (r.render(), r.score) for r in brute_results
        ]


class TestTraversalCache:
    def test_distance_maps_are_reused(self, data_graph):
        cache = TraversalCache(data_graph)
        target = tid("EMPLOYEE", "e1")
        first = cache.distances(target)
        second = cache.distances(target)
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_expansions_match_graph_order(self, data_graph):
        cache = TraversalCache(data_graph)
        node = tid("DEPARTMENT", "d1")
        expected = sorted(
            (
                (other, key)
                for __, other, key in data_graph.graph.edges(node, keys=True)
            ),
            key=lambda item: (str(item[0]), item[1]),
        )
        got = [
            (other, key) for other, key, __ in reversed(cache.expansions(node))
        ]
        assert len(got) == len(expected)

    def test_invalidate_clears_everything(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.distances(tid("EMPLOYEE", "e1"))
        cache.expansions(tid("EMPLOYEE", "e1"))
        cache.invalidate()
        assert cache._distances == {}
        assert cache._expansions == {}
        assert cache._neighbours == {}

    def test_rebuild_replaces_engine_cache(self, company_db):
        engine = KeywordSearchEngine(company_db)
        engine.search("Smith XML")
        old_cache = engine.traversal_cache
        engine.rebuild()
        assert engine.traversal_cache is not old_cache
        assert engine.traversal_cache.data_graph is engine.data_graph

    def test_distances_agree_with_networkx(self, synthetic_graph):
        import networkx as nx

        cache = TraversalCache(synthetic_graph)
        node = sorted(synthetic_graph.graph.nodes, key=str)[0]
        assert cache.distances(node) == nx.single_source_shortest_path_length(
            synthetic_graph.graph, node
        )

    def test_mismatched_cache_is_ignored(self, data_graph, planted_synthetic):
        # A cache built on a different graph must not poison answers.
        other_cache = TraversalCache(DataGraph(planted_synthetic))
        brute = list(
            enumerate_simple_paths(
                data_graph, tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"), 3
            )
        )
        fast = list(
            fast_enumerate_simple_paths(
                data_graph,
                tid("DEPARTMENT", "d1"),
                tid("EMPLOYEE", "e1"),
                3,
                cache=other_cache,
            )
        )
        assert fast == brute
        assert other_cache.hits == 0 and other_cache.misses == 0

    def test_distance_maps_are_bounded(self, synthetic_graph):
        cache = TraversalCache(synthetic_graph)
        cache.max_distance_maps = 3
        nodes = sorted(synthetic_graph.graph.nodes, key=str)[:5]
        for node in nodes:
            cache.distances(node)
        assert len(cache._distances) == 3
        assert list(cache._distances) == nodes[-3:]


class TestInvalidateTuples:
    """Edge cases of the fine-grained invalidation entry point."""

    def test_absent_tuple_is_a_noop(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.distances(tid("EMPLOYEE", "e1"))
        dropped = cache.invalidate_tuples([tid("EMPLOYEE", "e999")])
        # A tuple the graph never held appears in no distance map.
        assert dropped == 0
        assert tid("EMPLOYEE", "e1") in cache._distances

    def test_empty_changed_set_is_a_noop(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.distances(tid("EMPLOYEE", "e1"))
        frozen = cache.frozen()
        assert cache.invalidate_tuples([]) == 0
        assert cache._frozen is frozen  # nothing changed, nothing dropped

    def test_uncached_component_drops_nothing(self, data_graph):
        cache = TraversalCache(data_graph)
        # Cache only the isolated d3 component, then invalidate a tuple
        # of the big component that was never cached.
        cache.distances(tid("DEPARTMENT", "d3"))
        dropped = cache.invalidate_tuples([tid("EMPLOYEE", "e1")])
        assert dropped == 0
        assert tid("DEPARTMENT", "d3") in cache._distances

    def test_repeated_invalidation_is_idempotent(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.distances(tid("EMPLOYEE", "e1"))
        cache.expansions(tid("EMPLOYEE", "e1"))
        changed = [tid("EMPLOYEE", "e1")]
        first = cache.invalidate_tuples(changed)
        assert first == 1
        assert cache.invalidate_tuples(changed) == 0
        assert cache.invalidate_tuples(changed) == 0

    def test_only_touched_component_drops(self, data_graph):
        cache = TraversalCache(data_graph)
        cache.distances(tid("DEPARTMENT", "d3"))  # isolated component
        cache.distances(tid("EMPLOYEE", "e1"))    # big component
        dropped = cache.invalidate_tuples([tid("EMPLOYEE", "e2")])
        assert dropped == 1
        assert tid("DEPARTMENT", "d3") in cache._distances
        assert tid("EMPLOYEE", "e1") not in cache._distances

    def test_invalidation_drops_frozen_graph(self, data_graph):
        # Tuple ids alone carry no edge deltas, so the compiled CSR
        # graph cannot be patched here — it must not survive stale.
        cache = TraversalCache(data_graph)
        cache.frozen()
        cache.invalidate_tuples([tid("EMPLOYEE", "e1")])
        assert cache._frozen is None

    def test_full_invalidate_drops_frozen_graph(self, data_graph):
        cache = TraversalCache(data_graph)
        first = cache.frozen()
        cache.invalidate()
        assert cache._frozen is None
        assert cache.frozen() is not first
