"""Unit tests for the tuple-level data graph and its conceptual collapse."""

import pytest

from repro.er.cardinality import Cardinality
from repro.errors import PathError
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


class TestStructure:
    def test_every_tuple_is_a_node(self, data_graph, company_db):
        assert data_graph.number_of_nodes() == company_db.count() == 16

    def test_every_reference_is_an_edge(self, data_graph):
        # 3 project->dept is 3? p1,p2,p3 -> 3; employees 4; works_for 8 (2 fks
        # x 4 rows); dependents 2.  Total 3+4+8+2 = 17.
        assert data_graph.number_of_edges() == 17

    def test_has_node(self, data_graph):
        assert data_graph.has_node(tid("EMPLOYEE", "e1"))
        assert not data_graph.has_node(tid("EMPLOYEE", "e99"))

    def test_neighbours_of_employee(self, data_graph, company_db):
        neighbours = {
            company_db.tuple(other).label
            for other, __, __ in data_graph.neighbours(tid("EMPLOYEE", "e3"))
        }
        assert neighbours == {"d1", "w_f3", "t1", "t2"}

    def test_neighbours_unknown_tuple(self, data_graph):
        with pytest.raises(PathError):
            list(data_graph.neighbours(tid("EMPLOYEE", "e99")))

    def test_degree(self, data_graph):
        assert data_graph.degree(tid("DEPARTMENT", "d3")) == 0
        assert data_graph.degree(tid("DEPARTMENT", "d1")) == 3  # p1, e1, e3

    def test_edges_between(self, data_graph):
        edges = data_graph.edges_between(
            tid("EMPLOYEE", "e1"), tid("DEPARTMENT", "d1")
        )
        assert len(edges) == 1
        assert edges[0]["foreign_key"].name == "fk_employee_department"

    def test_edges_between_unjoined(self, data_graph):
        assert data_graph.edges_between(
            tid("EMPLOYEE", "e1"), tid("DEPARTMENT", "d2")
        ) == []

    def test_null_references_add_no_edge(self, company_db):
        from repro.graph.data_graph import DataGraph

        company_db.insert("EMPLOYEE", {"SSN": "e9", "L_NAME": "X", "S_NAME": "Y"})
        graph = DataGraph(company_db)
        assert graph.degree(tid("EMPLOYEE", "e9")) == 0


class TestEdgeCardinality:
    def test_read_from_referenced(self, data_graph):
        edge = data_graph.edges_between(
            tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")
        )[0]
        assert data_graph.edge_cardinality(edge, tid("DEPARTMENT", "d1")) == \
            Cardinality.one_to_many()

    def test_read_from_referencing(self, data_graph):
        edge = data_graph.edges_between(
            tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")
        )[0]
        assert data_graph.edge_cardinality(edge, tid("EMPLOYEE", "e1")) == \
            Cardinality.many_to_one()

    def test_is_middle(self, data_graph):
        assert data_graph.is_middle(tid("WORKS_FOR", "e1", "p1"))
        assert not data_graph.is_middle(tid("EMPLOYEE", "e1"))


class TestInducedSubgraphs:
    def test_connected_set(self, data_graph):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")]
        assert data_graph.is_connected_set(members)

    def test_disconnected_set(self, data_graph):
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e2")]
        assert not data_graph.is_connected_set(members)

    def test_indirectly_connected_needs_the_middle(self, data_graph):
        # e1 and p1 join only through w_f1.
        assert not data_graph.is_connected_set(
            [tid("EMPLOYEE", "e1"), tid("PROJECT", "p1")]
        )
        assert data_graph.is_connected_set(
            [
                tid("EMPLOYEE", "e1"),
                tid("WORKS_FOR", "e1", "p1"),
                tid("PROJECT", "p1"),
            ]
        )

    def test_empty_set_not_connected(self, data_graph):
        assert not data_graph.is_connected_set([])

    def test_missing_node_not_connected(self, data_graph):
        assert not data_graph.is_connected_set([tid("EMPLOYEE", "e99")])

    def test_induced_subgraph_keeps_internal_edges(self, data_graph):
        # d2 and e2 join directly; the subgraph on {d2, p3, w_f2, e2} keeps
        # that edge even though the "path" went around - the MTJNT property.
        members = [
            tid("DEPARTMENT", "d2"),
            tid("PROJECT", "p3"),
            tid("WORKS_FOR", "e2", "p3"),
            tid("EMPLOYEE", "e2"),
        ]
        induced = data_graph.induced_subgraph(members)
        assert induced.has_edge(tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2"))
        assert induced.number_of_edges() == 4


class TestConceptualGraph:
    def test_middle_tuples_removed(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        assert tid("WORKS_FOR", "e1", "p1") not in collapsed
        assert tid("EMPLOYEE", "e1") in collapsed

    def test_collapsed_edge_connects_anchors(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        assert collapsed.has_edge(tid("EMPLOYEE", "e1"), tid("PROJECT", "p1"))

    def test_collapsed_edge_remembers_middle(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        data = list(
            collapsed[tid("EMPLOYEE", "e1")][tid("PROJECT", "p1")].values()
        )[0]
        assert data["middle"] == tid("WORKS_FOR", "e1", "p1")

    def test_collapsed_edge_is_many_to_many(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        data = list(
            collapsed[tid("EMPLOYEE", "e1")][tid("PROJECT", "p1")].values()
        )[0]
        assert data_graph.conceptual_edge_cardinality(data).is_many_to_many

    def test_plain_edges_kept(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        assert collapsed.has_edge(tid("EMPLOYEE", "e1"), tid("DEPARTMENT", "d1"))

    def test_conceptual_graph_is_cached(self, data_graph):
        assert data_graph.conceptual_graph() is data_graph.conceptual_graph()

    def test_node_and_edge_counts(self, data_graph):
        collapsed = data_graph.conceptual_graph()
        assert collapsed.number_of_nodes() == 12       # 16 - 4 middles
        # 9 plain FK edges (3 project + 4 employee + 2 dependent) + 4
        # collapsed works-on edges.
        assert collapsed.number_of_edges() == 13


class TestLivePatching:
    """Satellite of the live-update subsystem: no stale conceptual views."""

    def test_invalidate_caches_drops_conceptual_view(self, data_graph):
        stale = data_graph.conceptual_graph()
        version = data_graph.version
        data_graph.invalidate_caches()
        assert data_graph.version == version + 1
        assert data_graph.conceptual_graph() is not stale

    def test_patch_methods_bump_version(self, company_db, data_graph):
        version = data_graph.version
        record = company_db.insert(
            "DEPENDENT", {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Nora"}
        )
        data_graph.add_tuple_node(record)
        assert data_graph.version == version + 1
        data_graph.remove_tuple_node(record.tid)
        assert data_graph.version == version + 2

    def test_direct_patch_cannot_serve_stale_conceptual_view(
        self, company_db, data_graph
    ):
        before = data_graph.conceptual_graph()
        assert not before.has_edge(tid("EMPLOYEE", "e3"), tid("PROJECT", "p1"))
        record = company_db.insert(
            "WORKS_FOR", {"ESSN": "e3", "P_ID": "p1", "HOURS": 5}
        )
        data_graph.add_tuple_node(record)
        for fk in company_db.schema.foreign_keys_from("WORKS_FOR"):
            target = company_db.referenced_tuple(record, fk)
            data_graph.add_fk_edge(record.tid, target.tid, fk)
        after = data_graph.conceptual_graph()
        assert after is not before
        assert after.has_edge(tid("EMPLOYEE", "e3"), tid("PROJECT", "p1"))
