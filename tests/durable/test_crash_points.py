"""Crash injection at every durability fault point.

Two layers: in-process ``raise`` faults prove the atomic-write protocol
cleans up and preserves the previous artefact, and subprocess ``kill``
faults deliver a real ``SIGKILL`` at the armed point — no handlers, no
flushes — after which the parent reopens snapshot + WAL and must land
bit-identical to an oracle engine that executed the surviving prefix of
batches itself.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.durable import fault
from repro.errors import FaultInjected
from repro.live.changes import Insert

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=3,
    works_on_per_employee=2,
    dependents_per_employee=0.5,
    seed=23,
)


def planted_database():
    database = generate_company_like(CONFIG)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 2, seed=2)
    return database


def batch(database, counter):
    """Batch ``counter``: one deterministic dependent insert."""
    employees = database.tuples("EMPLOYEE")
    essn = employees[counter % len(employees)].tid.key[0]
    name = ("kwbeta", "kwalpha", "plain")[counter % 3]
    return [Insert(
        "DEPENDENT",
        {"ID": f"cp{counter}", "ESSN": essn, "DEPENDENT_NAME": name},
    )]


def state_of(engine):
    from repro.relational.database import TupleId

    database = engine.database
    return engine.version, {
        name: [
            (key, dict(database.tuple(TupleId(name, key)).values))
            for key in database.relation_key_order(name)
        ]
        for name in sorted(r.name for r in database.schema.relations)
    }


def oracle_state(applied: int):
    """The state an engine reaches after ``applied`` batches, no WAL."""
    engine = KeywordSearchEngine(planted_database())
    for counter in range(applied):
        engine.apply(batch(engine.database, counter))
    return state_of(engine)


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    fault.reset()
    os.environ.pop("REPRO_FAULT", None)


# ----------------------------------------------------------------------
# in-process raise faults: the atomic-write protocol
# ----------------------------------------------------------------------
class TestAtomicSaveRegression:
    def test_crash_mid_save_preserves_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "e.snap")
        engine = KeywordSearchEngine(planted_database())
        engine.save(path)
        before = state_of(engine)
        engine.apply(batch(engine.database, 0))

        fault.configure("snapshot.mid-save:raise")
        with pytest.raises(FaultInjected):
            engine.save(path)
        fault.reset()

        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []
        reopened = KeywordSearchEngine.open(path)
        assert state_of(reopened) == before
        reopened.close()

    def test_crash_before_replace_preserves_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "e.snap")
        engine = KeywordSearchEngine(planted_database())
        engine.save(path)
        before = state_of(engine)
        engine.apply(batch(engine.database, 0))

        fault.configure("snapshot.pre-replace:raise")
        with pytest.raises(FaultInjected):
            engine.save(path)
        fault.reset()

        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []
        reopened = KeywordSearchEngine.open(path)
        assert state_of(reopened) == before
        reopened.close()

    def test_crash_after_wal_append_survives_in_the_log(self, tmp_path):
        """The post-append pre-apply window: the batch is durable even
        though the in-memory engine never finished applying it."""
        path = str(tmp_path / "e.snap")
        engine = KeywordSearchEngine(planted_database())
        engine.save(path)
        engine.attach_wal()
        engine.apply(batch(engine.database, 0))

        fault.configure("wal.append:raise")
        with pytest.raises(FaultInjected):
            engine.apply(batch(engine.database, 1))
        fault.reset()
        engine.detach_wal()

        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == oracle_state(2)
        reopened.close()


# ----------------------------------------------------------------------
# subprocess SIGKILL faults: real crashes, bit-identical recovery
# ----------------------------------------------------------------------
_CHILD = textwrap.dedent("""
    import sys

    sys.path.insert(0, {src!r})
    sys.path.insert(0, {here!r})

    from test_crash_points import batch, planted_database
    from repro.core.engine import KeywordSearchEngine
    from repro.durable import fault

    point, path, applies = sys.argv[1], sys.argv[2], int(sys.argv[3])

    engine = KeywordSearchEngine(planted_database())
    engine.save(path)
    engine.attach_wal()
    for counter in range(applies):
        engine.apply(batch(engine.database, counter))
        print("applied", counter + 1, flush=True)

    fault.configure(point + ":kill")
    if point.startswith("compact."):
        engine.compact_wal()
    elif point == "snapshot.mid-save":
        engine.detach_wal()
        engine.save(path)
    else:
        engine.apply(batch(engine.database, applies))
        print("applied", applies + 1, flush=True)
    print("survived", flush=True)  # never reached
""")


def run_child(tmp_path, point, applies):
    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.abspath(
        os.path.join(here, os.pardir, os.pardir, "src")
    )
    script = tmp_path / "child.py"
    script.write_text(_CHILD.format(src=src, here=here))
    path = str(tmp_path / "e.snap")
    result = subprocess.run(
        [sys.executable, str(script), point, path, str(applies)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == -9, (result.returncode, result.stderr)
    assert "survived" not in result.stdout
    return path, result.stdout


class TestKillNineRecovery:
    def test_kill_at_wal_append(self, tmp_path):
        path, out = run_child(tmp_path, "wal.append", applies=2)
        # The fault fires *after* the append fsynced: the third batch
        # is in the log even though apply() never returned.
        assert out.count("applied") == 2
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == oracle_state(3)
        reopened.close()

    def test_kill_mid_save_overwrite(self, tmp_path):
        path, __ = run_child(tmp_path, "snapshot.mid-save", applies=2)
        reopened = KeywordSearchEngine.open(path)
        # The overwrite died mid-write: the v0 snapshot is intact.
        assert state_of(reopened) == oracle_state(0)
        reopened.close()
        # ... and the WAL beside it still pairs with it, so replay
        # recovers both logged batches on top.
        recovered = KeywordSearchEngine.open(path, wal=True)
        assert state_of(recovered) == oracle_state(2)
        recovered.close()

    def test_kill_before_compaction_fold(self, tmp_path):
        path, __ = run_child(tmp_path, "compact.fold", applies=2)
        # Old snapshot + complete WAL: replay recovers everything.
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == oracle_state(2)
        assert reopened.version == 2
        reopened.close()

    def test_kill_between_fold_and_wal_reset(self, tmp_path):
        path, __ = run_child(tmp_path, "compact.swap", applies=2)
        # New snapshot + stale old-generation WAL: attach detects the
        # interrupted compaction, resets the log, replays nothing.
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == oracle_state(2)
        assert reopened.wal.base_version == reopened.version
        assert reopened.wal.records() == []
        reopened.close()
