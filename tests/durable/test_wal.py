"""WAL format, attach/replay policy and torn-tail handling.

The contract under test: every ``engine.apply`` batch is durably logged
before in-memory state changes, reopening snapshot + WAL restores an
engine bit-identical to the one that executed the batches live, and the
only damage a crashed append can cause — a torn tail record — is
tolerated while every other mismatch refuses loudly.
"""

import os

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.durable.wal import MAGIC, WriteAheadLog, default_wal_path
from repro.errors import WalError
from repro.live.changes import Delete, Insert, Update
from repro.relational.database import TupleId

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=3,
    works_on_per_employee=2,
    dependents_per_employee=0.5,
    seed=17,
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
QUERIES = ("kwalpha kwbeta", "kwalpha", "kwbeta")


def planted_database():
    database = generate_company_like(CONFIG)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 2, seed=2)
    return database


def batches_for(database):
    """Three deterministic batches: insert, update, delete + insert."""
    employee = database.tuples("EMPLOYEE")[0]
    department = database.tuples("DEPARTMENT")[0]
    essn = employee.tid.key[0]
    return [
        [Insert("DEPENDENT",
                {"ID": "walx1", "ESSN": essn, "DEPENDENT_NAME": "kwbeta"})],
        [Update(department.tid, {"D_DESCRIPTION": "kwalpha kwbeta lab"})],
        [
            Delete(TupleId("DEPENDENT", ("walx1",))),
            Insert("DEPENDENT",
                   {"ID": "walx2", "ESSN": essn, "DEPENDENT_NAME": "kwalpha"}),
        ],
    ]


def state_of(engine):
    """Replay-sensitive state: per-relation store order, rows, labels.

    Relations are compared each in its own store order (which index
    posting order observes) but enumerated sorted by name —
    ``all_tuples()`` interleaving on a lazily-loaded snapshot database
    depends on which relations were materialised first, which is
    access-order, not state.
    """
    database = engine.database
    rows = {
        name: [
            (key, dict(database.tuple(TupleId(name, key)).values),
             database.tuple(TupleId(name, key)).label)
            for key in database.relation_key_order(name)
        ]
        for name in sorted(r.name for r in database.schema.relations)
    }
    return engine.version, rows


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


def saved_engine(tmp_path, name="engine.snap"):
    path = str(tmp_path / name)
    engine = KeywordSearchEngine(planted_database())
    engine.save(path)
    engine.attach_wal()
    return engine, path


class TestWalFile:
    def test_fresh_log_requires_generation(self, tmp_path):
        with pytest.raises(WalError, match="generation"):
            WriteAheadLog(str(tmp_path / "x.wal"))

    def test_header_round_trip(self, tmp_path):
        path = str(tmp_path / "x.wal")
        WriteAheadLog(path, generation="cafe0123", base_version=7).close()
        wal = WriteAheadLog(path)
        assert wal.generation == "cafe0123"
        assert wal.base_version == 7
        assert wal.records() == []
        wal.close()

    def test_not_a_wal_file(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"definitely not a log")
        with pytest.raises(WalError, match="not a WAL"):
            WriteAheadLog(str(path))

    def test_append_and_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with WriteAheadLog(path, generation="g") as wal:
            first = wal.append({"version": 1, "payload": "a"})
            second = wal.append({"version": 2, "payload": "b"})
            assert second > first
        wal = WriteAheadLog(path)
        assert [record for __, record in wal.scan()] == [
            {"version": 1, "payload": "a"},
            {"version": 2, "payload": "b"},
        ]
        assert not wal.torn_tail
        wal.close()

    def test_reset_starts_over(self, tmp_path):
        path = str(tmp_path / "x.wal")
        wal = WriteAheadLog(path, generation="old", base_version=0)
        wal.append({"version": 1})
        wal.reset(generation="new", base_version=5)
        assert wal.records() == []
        assert (wal.generation, wal.base_version) == ("new", 5)
        wal.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with WriteAheadLog(path, generation="g") as wal:
            first_offset = wal.append({"version": 1, "pad": "x" * 64})
            wal.append({"version": 2})
        with open(path, "r+b") as handle:
            handle.seek(first_offset + 12)  # inside record 1's payload
            handle.write(b"\xff")
        wal = WriteAheadLog(path)
        with pytest.raises(WalError, match="mid-file"):
            wal.scan()
        wal.close()


class TestTornTail:
    def _torn_log(self, tmp_path, cut):
        path = str(tmp_path / "x.wal")
        with WriteAheadLog(path, generation="g") as wal:
            wal.append({"version": 1, "payload": "aaaa"})
            tail = wal.append({"version": 2, "payload": "bbbb"})
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(tail + cut)
        return path, tail, size

    @pytest.mark.parametrize("cut", [0, 1, 4, 7, 8, 9])
    def test_truncated_tail_is_tolerated(self, tmp_path, cut):
        path, tail, __ = self._torn_log(tmp_path, cut)
        wal = WriteAheadLog(path)
        records = wal.scan()
        assert [record["version"] for __, record in records] == [1]
        assert wal.torn_tail == (cut > 0)
        wal.close()

    def test_next_append_truncates_the_tail(self, tmp_path):
        path, tail, __ = self._torn_log(tmp_path, cut=5)
        wal = WriteAheadLog(path)
        wal.scan()
        wal.append({"version": 2, "payload": "retry"})
        wal.close()
        reread = WriteAheadLog(path)
        assert [r["version"] for r in reread.records()] == [1, 2]
        assert not reread.torn_tail
        reread.close()

    def test_garbage_tail_bytes_are_tolerated(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with WriteAheadLog(path, generation="g") as wal:
            wal.append({"version": 1})
        with open(path, "ab") as handle:
            handle.write(b"\x03\x00\x00\x00")  # torn length prefix
        wal = WriteAheadLog(path)
        assert [r["version"] for r in wal.records()] == [1]
        assert wal.torn_tail
        wal.close()


class TestAttachAndReplay:
    def test_reopen_is_bit_identical_to_live_engine(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        for batch in batches_for(engine.database):
            engine.apply(batch)
        live_state = state_of(engine)
        live_answers = {q: rendered(engine.search(q, limits=LIMITS))
                        for q in QUERIES}
        engine.close()

        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == live_state
        for query in QUERIES:
            assert rendered(
                reopened.search(query, limits=LIMITS)
            ) == live_answers[query]
        reopened.close()

    def test_empty_batches_keep_versions_in_lockstep(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        engine.apply([])
        engine.apply(batches_for(engine.database)[0])
        engine.apply([])
        assert engine.version == 3
        engine.close()
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert reopened.version == 3
        reopened.close()

    def test_replay_count_and_wal_grows_across_generations(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        engine.apply(batches_for(engine.database)[0])
        engine.close()
        second = KeywordSearchEngine.open(path)
        assert second.attach_wal() == 1
        second.apply(batches_for(second.database)[1])
        second.close()
        third = KeywordSearchEngine.open(path, wal=True)
        assert third.version == 2
        third.close()

    def test_attach_requires_snapshot_backed_engine(self):
        engine = KeywordSearchEngine(planted_database())
        with pytest.raises(WalError, match="snapshot-backed"):
            engine.attach_wal()

    def test_attach_refuses_after_engine_moved_on(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        engine.detach_wal()
        engine.apply(batches_for(engine.database)[0])
        with pytest.raises(WalError, match="moved past"):
            engine.attach_wal()
        engine.close()

    def test_double_attach_refused(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        with pytest.raises(WalError, match="already attached"):
            engine.attach_wal()
        engine.close()

    def test_rebuild_with_wal_refused_until_detached(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        with pytest.raises(WalError, match="rebuild"):
            engine.rebuild()
        engine.detach_wal()
        engine.rebuild()
        engine.close()

    def test_torn_tail_record_is_dropped_on_reopen(self, tmp_path):
        engine, path = saved_engine(tmp_path)
        batches = batches_for(engine.database)
        engine.apply(batches[0])
        engine.apply(batches[1])
        engine.close()
        wal_path = default_wal_path(path)
        with open(wal_path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 3)
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert reopened.version == 1  # the torn second record is lost
        assert reopened.wal.torn_tail
        reopened.close()


class TestGenerationHandshake:
    def test_foreign_wal_refused(self, tmp_path):
        engine, path = saved_engine(tmp_path, "a.snap")
        engine.apply(batches_for(engine.database)[0])
        engine.close()

        other = KeywordSearchEngine(generate_company_like(
            SyntheticConfig(departments=1, projects_per_department=1,
                            employees_per_department=2, seed=99)
        ))
        other_path = str(tmp_path / "b.snap")
        other.save(other_path)
        # Pair b.snap with a.snap's log, which holds newer records.
        with pytest.raises(WalError, match="different snapshot"):
            other.attach_wal(default_wal_path(path))

    def test_stale_wal_after_interrupted_compaction_resets(self, tmp_path):
        from repro.scale.snapshot import write_snapshot

        engine, path = saved_engine(tmp_path)
        engine.apply(batches_for(engine.database)[0])
        state = state_of(engine)
        # Simulate a compaction that crashed after publishing the new
        # snapshot but before resetting the log: fold by hand, leave
        # the old-generation WAL (whose records are all folded) behind.
        write_snapshot(engine, path)
        engine.detach_wal()
        engine.close()

        reopened = KeywordSearchEngine.open(path, wal=True)
        assert state_of(reopened) == state
        assert reopened.wal.base_version == reopened.version
        assert reopened.wal.records() == []
        reopened.close()

    def test_wal_survives_unrelated_autosaves(self, tmp_path):
        """Internal temp-file autosaves must not re-pair the WAL."""
        engine, path = saved_engine(tmp_path)
        engine.apply(batches_for(engine.database)[0])
        engine.search_batch(list(QUERIES), limits=LIMITS, jobs=2)  # autosave
        engine.apply(batches_for(engine.database)[1])
        assert engine._wal_snapshot_path == path
        version = engine.version
        engine.close()
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert reopened.version == version
        reopened.close()


class TestWalMetrics:
    def test_append_and_replay_counters(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        engine, path = saved_engine(tmp_path)
        obs_metrics.set_enabled(True)
        before = obs_metrics.REGISTRY.snapshot()
        engine.apply(batches_for(engine.database)[0])
        engine.apply([])
        engine.close()
        reopened = KeywordSearchEngine.open(path, wal=True)
        reopened.close()
        delta = obs_metrics.diff_snapshots(
            before, obs_metrics.REGISTRY.snapshot()
        )
        counters = {name: value for name, value in delta["counters"].items()}
        assert counters.get("wal.appends") == 2
        assert counters.get("wal.replayed") == 2
