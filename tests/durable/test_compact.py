"""Compaction: fold the WAL into a fresh snapshot and hot-swap it in.

Covers the offline path (``compact_snapshot``, the CLI's ``wal
compact``), fold-to-copy with ``--out``, and the acceptance scenario:
a live engine with a worker pool keeps answering a mixed read/write
workload across a compaction-and-swap cycle with zero failed queries
and answers always equal to a from-scratch serial oracle.
"""

import os

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.durable import compact_snapshot, default_wal_path
from repro.errors import WalError
from repro.live.changes import Insert, Update, apply_to_database

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    dependents_per_employee=0.5,
    seed=29,
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
QUERIES = ["kwalpha kwbeta", "kwalpha", "kwbeta", "nothinghere"]


def planted_database():
    database = generate_company_like(CONFIG)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    return database


def mixed_batch(database, counter):
    """Alternate keyword-bearing inserts and description updates."""
    if counter % 2 == 0:
        employees = database.tuples("EMPLOYEE")
        essn = employees[counter % len(employees)].tid.key[0]
        return [Insert(
            "DEPENDENT",
            {"ID": f"mix{counter}", "ESSN": essn,
             "DEPENDENT_NAME": ("kwbeta", "kwalpha")[counter % 4 == 0]},
        )]
    departments = database.tuples("DEPARTMENT")
    department = departments[counter % len(departments)]
    text = ("kwalpha shift", "plain words", "kwalpha kwbeta mix")[counter % 3]
    return [Update(department.tid, {"D_DESCRIPTION": text})]


def rendered(batches):
    return [[(r.render(), r.score, r.rank) for r in results]
            for results in batches]


class TestOfflineCompaction:
    def _pair_with_records(self, tmp_path, batches=2):
        path = str(tmp_path / "e.snap")
        engine = KeywordSearchEngine(planted_database())
        engine.save(path)
        engine.attach_wal()
        for counter in range(batches):
            engine.apply(mixed_batch(engine.database, counter))
        state = (engine.version,
                 rendered([engine.search(q, limits=LIMITS) for q in QUERIES]))
        engine.close()
        return path, state

    def test_compact_snapshot_folds_and_resets(self, tmp_path):
        path, (version, answers) = self._pair_with_records(tmp_path)
        report = compact_snapshot(path)
        assert report.records_folded == 2
        assert report.engine_version == version
        assert report.snapshot_path == path

        reopened = KeywordSearchEngine.open(path, wal=True)
        assert reopened.version == version
        assert reopened.wal.base_version == version
        assert reopened.wal.records() == []
        assert rendered(
            [reopened.search(q, limits=LIMITS) for q in QUERIES]
        ) == answers
        reopened.close()

    def test_fold_to_copy_leaves_original_untouched(self, tmp_path):
        path, (version, answers) = self._pair_with_records(tmp_path)
        out = str(tmp_path / "folded.snap")
        with open(path, "rb") as handle:
            snapshot_bytes = handle.read()
        with open(default_wal_path(path), "rb") as handle:
            wal_bytes = handle.read()

        report = compact_snapshot(path, out=out)
        assert report.snapshot_path == out
        assert report.wal_path == default_wal_path(out)

        with open(path, "rb") as handle:
            assert handle.read() == snapshot_bytes
        with open(default_wal_path(path), "rb") as handle:
            assert handle.read() == wal_bytes

        copy = KeywordSearchEngine.open(out, wal=True)
        assert copy.version == version
        assert copy.wal.records() == []
        assert rendered(
            [copy.search(q, limits=LIMITS) for q in QUERIES]
        ) == answers
        copy.close()

    def test_compact_without_wal_refused(self, tmp_path):
        from repro.durable import hot_compact

        path = str(tmp_path / "e.snap")
        engine = KeywordSearchEngine(planted_database())
        engine.save(path)
        with pytest.raises(WalError, match="no attached WAL"):
            hot_compact(engine)
        engine.close()

    def test_compaction_metric(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        path, __ = self._pair_with_records(tmp_path)
        obs_metrics.set_enabled(True)
        before = obs_metrics.REGISTRY.snapshot()
        compact_snapshot(path)
        delta = obs_metrics.diff_snapshots(
            before, obs_metrics.REGISTRY.snapshot()
        )
        assert delta["counters"].get("compact.swaps") == 1


class TestHotSwapUnderLoad:
    def test_mixed_workload_across_a_compaction_cycle(self, tmp_path):
        """The acceptance scenario: queries never fail, answers always
        match a from-scratch serial oracle, one compaction mid-stream
        hot-swaps every worker."""
        path = str(tmp_path / "live.snap")
        oracle_db = planted_database()
        engine = KeywordSearchEngine(
            planted_database(), result_cache_entries=0
        )
        engine.save(path)
        engine.attach_wal()

        failed = 0
        for counter in range(8):
            answers = rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            oracle = KeywordSearchEngine(oracle_db, result_cache_entries=0)
            expected = rendered(
                [oracle.search(q, limits=LIMITS) for q in QUERIES]
            )
            if answers != expected:
                failed += 1

            if counter == 4:
                searcher = engine._searcher
                report = engine.compact_wal()
                assert report.workers_reopened == 2
                assert engine._searcher is searcher  # swapped, not rebuilt
                assert engine.wal.records() == []
                # Post-swap, the same pool still answers identically.
                assert rendered(
                    engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
                ) == expected

            batch = mixed_batch(engine.database, counter)
            engine.apply(batch)
            apply_to_database(oracle_db, batch)

        assert failed == 0
        assert engine.version == 8

        # The durable pair reflects every batch: snapshot at the
        # compaction point plus WAL records for what followed.
        version = engine.version
        engine.close()
        reopened = KeywordSearchEngine.open(path, wal=True)
        assert reopened.version == version
        oracle = KeywordSearchEngine(oracle_db, result_cache_entries=0)
        assert rendered(
            [reopened.search(q, limits=LIMITS) for q in QUERIES]
        ) == rendered(
            [oracle.search(q, limits=LIMITS) for q in QUERIES]
        )
        reopened.close()

    def test_hot_compact_to_copy_does_not_touch_the_pool(self, tmp_path):
        path = str(tmp_path / "live.snap")
        engine = KeywordSearchEngine(
            planted_database(), result_cache_entries=0
        )
        engine.save(path)
        engine.attach_wal()
        engine.apply(mixed_batch(engine.database, 0))
        before = rendered(
            engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
        )
        out = str(tmp_path / "copy.snap")
        report = engine.compact_wal(out=out)
        assert report.workers_reopened == 0
        assert os.path.exists(default_wal_path(out))
        # The original pair still has its record; the pool still serves.
        assert len(engine.wal.records()) == 1
        assert rendered(
            engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
        ) == before
        engine.close()
