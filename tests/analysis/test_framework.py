"""Tests for the linter framework: suppressions, baseline, reporting.

Runs against throwaway source trees under ``tmp_path`` so baseline and
path handling are exercised end-to-end without touching the repo's own
baseline file.
"""

import io
import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisReport,
    Baseline,
    FileContext,
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    main,
    render_json,
)

VIOLATION = textwrap.dedent(
    """
    def tag(obj):
        return id(obj)
    """
)


def make_tree(tmp_path, name="sample.py", source=VIOLATION):
    """A throwaway ``src/repro`` tree so default targets resolve."""
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True, exist_ok=True)
    (package / name).write_text(source, encoding="utf-8")
    return tmp_path


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
def test_finding_key_is_line_free():
    here = Finding("DET02", "a.py", 3, 4, "msg", "f")
    moved = Finding("DET02", "a.py", 90, 0, "msg", "f")
    assert here.key == moved.key
    assert here.key == ("DET02", "a.py", "f", "msg")


def test_finding_render_format():
    finding = Finding("DET02", "src/repro/x.py", 3, 4, "id() is bad", "f.g")
    assert finding.render() == "src/repro/x.py:3:4: DET02 id() is bad [f.g]"
    module_level = Finding("DET02", "x.py", 1, 0, "msg", "")
    assert module_level.render() == "x.py:1:0: DET02 msg"


def test_rule_registry_has_the_documented_battery():
    expected = {"DET01", "DET02", "PKL01", "FRZ01", "RES01", "API01", "SLOT01",
                "DUR01"}
    assert set(all_rules()) == expected


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_same_line_suppression():
    source = "def tag(obj):\n    return id(obj)  # repro-lint: disable=DET02\n"
    findings = analyze_source(source, "src/repro/x.py")
    assert [f.rule for f in findings] == ["DET02"]
    ctx = FileContext(source, "src/repro/x.py")
    assert ctx.is_suppressed(findings[0])


def test_comment_only_line_covers_the_next_line():
    source = (
        "def tag(obj):\n"
        "    # identity only feeds a debug label  # repro-lint: disable=DET02\n"
        "    return id(obj)\n"
    )
    ctx = FileContext(source, "src/repro/x.py")
    (finding,) = analyze_source(source, "src/repro/x.py")
    assert finding.line == 3
    assert ctx.is_suppressed(finding)


def test_suppression_only_silences_the_named_rules():
    source = "def tag(obj):\n    return id(obj)  # repro-lint: disable=DET01\n"
    ctx = FileContext(source, "src/repro/x.py")
    (finding,) = analyze_source(source, "src/repro/x.py")
    assert not ctx.is_suppressed(finding)


def test_multi_rule_suppression_comma_separated():
    source = "def tag(obj):\n    return id(obj)  # repro-lint: disable=DET01, DET02\n"
    ctx = FileContext(source, "src/repro/x.py")
    (finding,) = analyze_source(source, "src/repro/x.py")
    assert ctx.is_suppressed(finding)


def test_marker_inside_string_literal_is_not_a_suppression():
    # The marker text in a string literal (docs, fixtures) must not
    # silence the line it sits on or the one below it.
    source = (
        'DOC = "use # repro-lint: disable=DET02 to silence"\n'
        "def tag(obj):\n"
        "    return id(obj)\n"
        'EXAMPLE = """\n'
        "# repro-lint: disable=DET02\n"
        '"""\n'
        "def tag2(obj):\n"
        "    return id(obj)\n"
    )
    ctx = FileContext(source, "src/repro/x.py")
    assert ctx.suppressions == {}
    findings = analyze_source(source, "src/repro/x.py")
    assert [f.rule for f in findings] == ["DET02", "DET02"]
    assert not any(ctx.is_suppressed(f) for f in findings)


def test_analyze_paths_classifies_suppressed(tmp_path):
    root = make_tree(
        tmp_path,
        source="def tag(obj):\n    return id(obj)  # repro-lint: disable=DET02\n",
    )
    report = analyze_paths(root=root)
    assert not report.new
    assert len(report.suppressed) == 1
    assert report.exit_code == 0


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def entry(finding):
    return Baseline.entry_for(finding)


def test_baseline_absorbs_matching_finding(tmp_path):
    root = make_tree(tmp_path)
    report = analyze_paths(root=root)
    (finding,) = report.new
    baseline = Baseline([entry(finding)])
    again = analyze_paths(root=root, baseline=baseline)
    assert not again.new
    assert len(again.baselined) == 1
    assert again.exit_code == 0
    assert not again.stale_baseline


def test_baseline_matching_survives_line_moves(tmp_path):
    root = make_tree(tmp_path)
    (finding,) = analyze_paths(root=root).new
    baseline = Baseline([entry(finding)])
    # Unrelated edit above shifts the violation down two lines.
    make_tree(tmp_path, source="X = 1\nY = 2\n" + VIOLATION)
    again = analyze_paths(root=root, baseline=baseline)
    assert not again.new
    assert len(again.baselined) == 1


def test_baseline_multiplicity_budget(tmp_path):
    # Two identical findings, one baseline entry: one absorbed, one new.
    doubled = (
        "def tag(obj):\n"
        "    first = id(obj)\n"
        "    second = id(obj)\n"
        "    return first + second\n"
    )
    root = make_tree(tmp_path, source=doubled)
    report = analyze_paths(root=root)
    assert len(report.new) == 2
    assert report.new[0].key == report.new[1].key
    baseline = Baseline([entry(report.new[0])])
    again = analyze_paths(root=root, baseline=baseline)
    assert len(again.baselined) == 1
    assert len(again.new) == 1
    assert again.exit_code == 1


def test_stale_baseline_entries_reported(tmp_path):
    root = make_tree(tmp_path, source="CLEAN = True\n")
    baseline = Baseline(
        [{"rule": "DET02", "path": "gone.py", "scope": "", "message": "old"}]
    )
    report = analyze_paths(root=root, baseline=baseline)
    assert report.stale_baseline == [
        {"rule": "DET02", "path": "gone.py", "scope": "", "message": "old"}
    ]
    assert report.exit_code == 0  # stale alone fails only under --strict


# ----------------------------------------------------------------------
# reporting and exit codes
# ----------------------------------------------------------------------
def test_exit_codes():
    assert AnalysisReport().exit_code == 0
    finding = Finding("DET02", "x.py", 1, 0, "m", "")
    assert AnalysisReport(new=[finding]).exit_code == 1
    assert AnalysisReport(errors=["boom"]).exit_code == 2


def test_unparseable_file_is_an_error_not_a_crash(tmp_path):
    root = make_tree(tmp_path, source="def broken(:\n")
    report = analyze_paths(root=root)
    assert report.errors and "SyntaxError" in report.errors[0]
    assert report.exit_code == 2


def test_render_json_schema(tmp_path):
    root = make_tree(tmp_path)
    document = render_json(analyze_paths(root=root))
    assert document["schema"] == "repro-lint-report/1"
    assert document["files"] == 1
    (encoded,) = document["new"]
    assert set(encoded) == {"rule", "path", "line", "col", "message", "scope"}
    assert encoded["rule"] == "DET02"
    assert document["counts"] == {"DET02": 1}
    assert document["exit_code"] == 1


def test_counts_include_suppressed_pressure(tmp_path):
    root = make_tree(
        tmp_path,
        source="def tag(obj):\n    return id(obj)  # repro-lint: disable=DET02\n",
    )
    report = analyze_paths(root=root)
    assert report.counts() == {"DET02": 1}


# ----------------------------------------------------------------------
# command-line entry points
# ----------------------------------------------------------------------
def run_main(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_main_reports_new_findings(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    code, output = run_main(str(target), "--baseline", str(tmp_path / "b.json"))
    assert code == 1
    assert "DET02" in output
    assert "1 new" in output


def test_main_json_output(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    code, output = run_main(
        str(target), "--json", "--baseline", str(tmp_path / "b.json")
    )
    assert code == 1
    document = json.loads(output)
    assert document["schema"] == "repro-lint-report/1"
    assert document["counts"] == {"DET02": 1}


def test_main_rules_filter(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    code, output = run_main(
        str(target), "--rules", "DET01", "--baseline", str(tmp_path / "b.json")
    )
    assert code == 0  # DET02 violation invisible to a DET01-only run
    code, __ = run_main(
        str(target), "--rules", "NOPE", "--baseline", str(tmp_path / "b.json")
    )
    assert code == 2


def test_update_baseline_roundtrip(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    code, output = run_main(str(target), "--update-baseline", "--baseline", str(baseline))
    assert code == 0
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert len(document["entries"]) == 1
    # With the written baseline the same run now gates green, strict too.
    code, output = run_main(str(target), "--strict", "--baseline", str(baseline))
    assert code == 0
    assert "1 baselined" in output


def test_update_baseline_rejects_rules_filter(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    code, output = run_main(
        str(target),
        "--update-baseline",
        "--rules",
        "DET02",
        "--baseline",
        str(tmp_path / "b.json"),
    )
    assert code == 2
    assert "--rules" in output
    assert not (tmp_path / "b.json").exists()


def test_update_baseline_rejects_paths_without_explicit_baseline(tmp_path):
    # Rewriting the *default* baseline from a path-filtered run would
    # silently drop entries for every unanalysed file.
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    code, output = run_main(str(target), "--update-baseline")
    assert code == 2
    assert "--baseline" in output


def test_strict_fails_on_stale_baseline(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("CLEAN = True\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": "DET02", "path": "gone.py", "scope": "", "message": "old"}
                ],
            }
        ),
        encoding="utf-8",
    )
    code, output = run_main(str(target), "--baseline", str(baseline))
    assert code == 0
    code, output = run_main(str(target), "--strict", "--baseline", str(baseline))
    assert code == 1
    assert "stale baseline entry" in output


def test_cli_lint_subcommand(tmp_path):
    from repro.cli import main as cli_main

    target = tmp_path / "bad.py"
    target.write_text(VIOLATION, encoding="utf-8")
    out = io.StringIO()
    code = cli_main(
        ["lint", str(target), "--baseline", str(tmp_path / "b.json")], out=out
    )
    assert code == 1
    assert "DET02" in out.getvalue()

    out = io.StringIO()
    target.write_text("CLEAN = True\n", encoding="utf-8")
    code = cli_main(
        ["lint", str(target), "--strict", "--baseline", str(tmp_path / "b.json")],
        out=out,
    )
    assert code == 0


def test_cli_help_mentions_lint(capsys):
    from repro.cli import main as cli_main

    with pytest.raises(SystemExit):
        cli_main(["--help"])
    assert "lint" in capsys.readouterr().out
