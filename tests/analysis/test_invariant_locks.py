"""Lock-in tests: the linter must catch this repo's own shipped bugs.

These tests mutate the *real* source files in memory to re-introduce
the exact bug shapes the rules were written for, and assert the lint
fails — so quietly reverting either fix makes CI red twice (here and
in the lint job).  The pristine sources must stay clean, and the whole
tree must gate green against the committed baseline.
"""

from pathlib import Path

from repro.analysis import analyze_paths, analyze_source

REPO_ROOT = Path(__file__).resolve().parents[2]
SEARCH_PATH = "src/repro/core/search.py"
ERRORS_PATH = "src/repro/errors.py"


def read(rel_path):
    return (REPO_ROOT / rel_path).read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# PR 4: spanning-tree iteration order
# ----------------------------------------------------------------------
def test_reintroducing_pr4_spanning_tree_bug_fires_det01():
    pristine = read(SEARCH_PATH)
    fixed = "sorted(self.tuples, key=_sort_key)"
    assert fixed in pristine, "the PR 4 fix moved; update this lock-in test"
    broken = pristine.replace(fixed, "self.tuples")
    assert broken != pristine
    findings = [
        finding
        for finding in analyze_source(broken, SEARCH_PATH)
        if finding.rule == "DET01"
    ]
    assert findings, "DET01 no longer catches the PR 4 spanning-tree bug"
    assert any("self.tuples" in finding.message for finding in findings)


def test_pristine_search_module_has_no_det01():
    findings = analyze_source(read(SEARCH_PATH), SEARCH_PATH)
    assert not [f for f in findings if f.rule == "DET01"]


# ----------------------------------------------------------------------
# PR 5: stateful error subclasses crossing worker pipes
# ----------------------------------------------------------------------
def test_stateful_error_subclass_without_reduce_fires_pkl01():
    broken = read(ERRORS_PATH) + (
        "\n\n"
        "class RegressionShardError(ReproError):\n"
        '    """A hypothetical subclass someone adds without pickle care."""\n'
        "\n"
        "    def __init__(self, message, shard):\n"
        "        super().__init__(message)\n"
        "        self.shard = shard\n"
    )
    findings = [
        finding
        for finding in analyze_source(broken, ERRORS_PATH)
        if finding.rule == "PKL01"
    ]
    assert findings, "PKL01 no longer catches stateful errors without __reduce__"
    assert "RegressionShardError" in findings[0].message


def test_pristine_errors_module_has_no_pkl01():
    findings = analyze_source(read(ERRORS_PATH), ERRORS_PATH)
    assert not [f for f in findings if f.rule == "PKL01"]


# ----------------------------------------------------------------------
# the whole tree gates green
# ----------------------------------------------------------------------
def test_repo_is_lint_clean_against_committed_baseline():
    report = analyze_paths()  # default targets + committed baseline
    assert not report.errors, report.errors
    assert not report.new, "\n".join(f.render() for f in report.new)
    assert not report.stale_baseline, report.stale_baseline


def test_every_suppression_in_tree_names_a_real_finding():
    # A suppression comment that silences nothing is dead weight —
    # either the code changed (remove it) or the rule regressed.
    report = analyze_paths()
    assert report.suppressed, (
        "expected the documented DET02 suppressions in graph/csr.py; "
        "if they were removed on purpose, update this test"
    )
    for finding in report.suppressed:
        assert finding.rule == "DET02"
        assert finding.path.endswith("graph/csr.py")
