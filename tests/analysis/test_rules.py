"""Fixture tests for the invariant rule battery.

Every rule gets at least one true-positive (a minimal program with the
bug shape the rule exists for) and at least one negative (the idiomatic
fix, or a context where the construct is legitimate).  Fixtures run
through :func:`analyze_source` with an impersonated ``rel_path`` so
module-scoped behaviour (FRZ01 home modules, SLOT01 hot modules) is
exercised without touching the real tree.
"""

import textwrap

from repro.analysis import analyze_source

PATH = "src/repro/core/sample.py"


def hits(source, rule, path=PATH):
    findings = analyze_source(textwrap.dedent(source), path)
    return [finding for finding in findings if finding.rule == rule]


# ----------------------------------------------------------------------
# DET01 — unordered iteration feeding order-sensitive accumulation
# ----------------------------------------------------------------------
class TestDet01:
    def test_for_loop_append_over_set_param(self):
        found = hits(
            """
            def collect(items: set):
                out = []
                for item in items:
                    out.append(item)
                return out
            """,
            "DET01",
        )
        assert len(found) == 1
        assert "append" in found[0].message

    def test_sorted_for_loop_is_clean(self):
        assert not hits(
            """
            def collect(items: set):
                out = []
                for item in sorted(items):
                    out.append(item)
                return out
            """,
            "DET01",
        )

    def test_yield_from_set_iteration(self):
        found = hits(
            """
            def emit(seen: frozenset):
                for item in seen:
                    yield item
            """,
            "DET01",
        )
        assert len(found) == 1

    def test_listcomp_over_set(self):
        assert hits(
            """
            def snapshot(tags: frozenset):
                return [tag for tag in tags]
            """,
            "DET01",
        )

    def test_listcomp_inside_sorted_is_clean(self):
        assert not hits(
            """
            def snapshot(tags: frozenset):
                return sorted([tag for tag in tags])
            """,
            "DET01",
        )

    def test_list_conversion_of_set_literal(self):
        found = hits(
            """
            def freeze(pending: set):
                order = list(pending)
                return order
            """,
            "DET01",
        )
        assert len(found) == 1

    def test_list_conversion_for_mutability_only_is_clean(self):
        # The csr.py joining-trees idiom: list() exists for mutability,
        # every later read is order-neutral.
        assert not hits(
            """
            def drain(pending: set):
                frontier = list(pending)
                if frontier:
                    return sorted(frontier)
                return []
            """,
            "DET01",
        )

    def test_min_with_key_over_set_ties_on_iteration_order(self):
        assert hits(
            """
            def pick(candidates: set):
                return min(candidates, key=str)
            """,
            "DET01",
        )

    def test_min_by_value_over_set_is_clean(self):
        assert not hits(
            """
            def pick(candidates: set):
                return min(candidates)
            """,
            "DET01",
        )

    def test_pr4_shape_set_attribute_into_induced_subgraph(self):
        # The exact PR 4 incident: a frozenset attribute handed straight
        # to networkx, whose MST tie-break follows insertion order.
        found = hits(
            """
            class Network:
                def __init__(self, tuple_ids: frozenset):
                    self.tuples = tuple_ids

                def tree(self, graph):
                    return graph.induced_subgraph(self.tuples)
            """,
            "DET01",
        )
        assert len(found) == 1
        assert "self.tuples" in found[0].message

    def test_pr4_shape_sorted_is_clean(self):
        assert not hits(
            """
            class Network:
                def __init__(self, tuple_ids: frozenset):
                    self.tuples = tuple_ids

                def tree(self, graph):
                    return graph.induced_subgraph(sorted(self.tuples))
            """,
            "DET01",
        )

    def test_set_inferred_from_assignment(self):
        assert hits(
            """
            def gather(rows):
                keys = {row.key for row in rows}
                return list(keys)
            """,
            "DET01",
        )


# ----------------------------------------------------------------------
# DET02 — process-dependent id()/hash() values
# ----------------------------------------------------------------------
class TestDet02:
    def test_id_call(self):
        found = hits(
            """
            def tag(obj):
                return id(obj)
            """,
            "DET02",
        )
        assert len(found) == 1

    def test_sort_key_id(self):
        assert hits(
            """
            def rank(items):
                return sorted(items, key=id)
            """,
            "DET02",
        )

    def test_hash_of_tuple_outside_dunder_hash(self):
        assert hits(
            """
            def digest(pair):
                return hash(pair)
            """,
            "DET02",
        )

    def test_hash_inside_dunder_hash_is_clean(self):
        assert not hits(
            """
            class Key:
                def __hash__(self):
                    return hash((self.a, self.b))
            """,
            "DET02",
        )

    def test_hash_of_int_constant_is_clean(self):
        assert not hits(
            """
            def probe():
                return hash(5)
            """,
            "DET02",
        )


# ----------------------------------------------------------------------
# PKL01 — stateful ReproError subclass without __reduce__
# ----------------------------------------------------------------------
class TestPkl01:
    def test_stateful_subclass_without_reduce(self):
        found = hits(
            """
            from repro.errors import ReproError

            class ShardError(ReproError):
                def __init__(self, message, shard):
                    super().__init__(message)
                    self.shard = shard
            """,
            "PKL01",
        )
        assert len(found) == 1
        assert "ShardError" in found[0].message

    def test_reduce_makes_it_clean(self):
        assert not hits(
            """
            from repro.errors import ReproError

            class ShardError(ReproError):
                def __init__(self, message, shard):
                    super().__init__(message)
                    self.shard = shard

                def __reduce__(self):
                    return (type(self), (self.args[0], self.shard))
            """,
            "PKL01",
        )

    def test_getstate_also_counts_as_pickle_hook(self):
        assert not hits(
            """
            from repro.errors import ReproError

            class ShardError(ReproError):
                def __init__(self, message, shard):
                    super().__init__(message)
                    self.shard = shard

                def __getstate__(self):
                    return {"shard": self.shard}
            """,
            "PKL01",
        )

    def test_stateless_subclass_is_clean(self):
        assert not hits(
            """
            from repro.errors import ReproError

            class ShardError(ReproError):
                \"\"\"No own __init__: base __reduce__ covers it.\"\"\"
            """,
            "PKL01",
        )

    def test_transitive_subclass_is_caught(self):
        found = hits(
            """
            from repro.errors import ReproError

            class ScaleError(ReproError):
                pass

            class ShardError(ScaleError):
                def __init__(self, message, shard):
                    super().__init__(message)
                    self.shard = shard
            """,
            "PKL01",
        )
        assert [f.message for f in found] and "ShardError" in found[0].message

    def test_unrelated_stateful_class_is_clean(self):
        assert not hits(
            """
            class Config:
                def __init__(self, depth):
                    self.depth = depth
            """,
            "PKL01",
        )


# ----------------------------------------------------------------------
# FRZ01 — mutation of frozen structures outside their modules
# ----------------------------------------------------------------------
FRZ_MUTATION = """
    def patch(cache):
        frozen = cache.frozen()
        frozen._alive[3] = 0
"""


class TestFrz01:
    def test_subscript_store_into_frozen_factory_result(self):
        found = hits(FRZ_MUTATION, "FRZ01", path="src/repro/live/maintain.py")
        assert len(found) == 1
        assert "frozen" in found[0].message

    def test_home_module_is_exempt(self):
        assert not hits(FRZ_MUTATION, "FRZ01", path="src/repro/graph/csr.py")

    def test_sanctioned_entry_point_is_exempt(self):
        assert not hits(
            """
            def apply_changeset(cache, changes):
                frozen = cache.frozen()
                frozen._alive[3] = 0
            """,
            "FRZ01",
            path="src/repro/live/maintain.py",
        )

    def test_mutator_method_on_frozen_attribute(self):
        found = hits(
            """
            def trim(cache):
                frozen = cache.frozen()
                frozen._distances.pop(1)
            """,
            "FRZ01",
        )
        assert len(found) == 1
        assert ".pop()" in found[0].message

    def test_annotation_marks_parameter_frozen(self):
        assert hits(
            """
            def tweak(graph: FrozenGraph):
                graph._offsets[0] = 1
            """,
            "FRZ01",
        )

    def test_constructor_result_tracked(self):
        assert hits(
            """
            def build(data):
                plan = ShardPlan(data)
                plan.assignment.append(0)
            """,
            "FRZ01",
        )

    def test_reads_are_clean(self):
        assert not hits(
            """
            def inspect(cache):
                frozen = cache.frozen()
                return frozen._alive[3], len(frozen._offsets)
            """,
            "FRZ01",
        )


# ----------------------------------------------------------------------
# RES01 — resource acquired without a paired close()
# ----------------------------------------------------------------------
class TestRes01:
    def test_inline_open_read(self):
        found = hits(
            """
            def peek(path):
                return open(path).read()
            """,
            "RES01",
        )
        assert len(found) == 1
        assert "inline" in found[0].message

    def test_leaked_local_handle(self):
        assert hits(
            """
            def leak(path):
                handle = open(path)
                data = handle.read()
                return data
            """,
            "RES01",
        )

    def test_returning_read_data_is_not_an_escape(self):
        # ``return handle.read()`` returns the *data*; the handle itself
        # still leaks.
        assert hits(
            """
            def sneaky(path):
                handle = open(path)
                return handle.read()
            """,
            "RES01",
        )

    def test_with_statement_is_clean(self):
        assert not hits(
            """
            def read(path):
                with open(path) as handle:
                    return handle.read()
            """,
            "RES01",
        )

    def test_try_finally_close_is_clean(self):
        assert not hits(
            """
            def read(path):
                handle = open(path)
                try:
                    return handle.read()
                finally:
                    handle.close()
            """,
            "RES01",
        )

    def test_returning_the_handle_transfers_ownership(self):
        assert not hits(
            """
            def acquire(path):
                handle = open(path)
                return handle
            """,
            "RES01",
        )

    def test_wrapping_the_handle_transfers_ownership(self):
        assert not hits(
            """
            def acquire(path):
                handle = open(path)
                return Reader(handle)
            """,
            "RES01",
        )

    def test_alternate_constructor_open_is_not_a_file(self):
        assert not hits(
            """
            def serve(path):
                engine = Engine.open(path)
                return engine.search("q")
            """,
            "RES01",
        )

    def test_self_attribute_with_closing_method_is_clean(self):
        assert not hits(
            """
            class Holder:
                def __init__(self, path):
                    self._handle = open(path)

                def close(self):
                    self._handle.close()
            """,
            "RES01",
        )

    def test_self_attribute_without_closing_method(self):
        found = hits(
            """
            class Holder:
                def __init__(self, path):
                    self._handle = open(path)
            """,
            "RES01",
        )
        assert len(found) == 1
        assert "self._handle" in found[0].message

    def test_mmap_without_release(self):
        assert hits(
            """
            import mmap

            def map_it(fileno):
                view = mmap.mmap(fileno, 0)
                return view.size()
            """,
            "RES01",
        )

    def test_pipe_ends_appended_to_owner_list_are_clean(self):
        assert not hits(
            """
            def spawn(mp, workers):
                parent_end, child_end = mp.Pipe()
                workers.append((parent_end, child_end))
            """,
            "RES01",
        )

    def test_shared_memory_creator_needs_close_and_unlink(self):
        found = hits(
            """
            from multiprocessing import shared_memory

            def arena(size):
                segment = shared_memory.SharedMemory(create=True, size=size)
                segment.close()
            """,
            "RES01",
        )
        assert len(found) == 1
        assert "unlink()" in found[0].message

    def test_shared_memory_creator_with_both_is_clean(self):
        assert not hits(
            """
            from multiprocessing import shared_memory

            def arena(size):
                segment = shared_memory.SharedMemory(create=True, size=size)
                try:
                    use(segment)
                finally:
                    segment.close()
                    segment.unlink()
            """,
            "RES01",
        )

    def test_shared_memory_creator_on_self_needs_unlink_method(self):
        found = hits(
            """
            class Pool:
                def __init__(self, size):
                    self._arena = SharedMemory(create=True, size=size)

                def close(self):
                    self._arena.close()
            """,
            "RES01",
        )
        assert len(found) == 1
        assert ".unlink()" in found[0].message

    def test_shared_memory_attach_only_needs_close(self):
        # Attachers map an existing segment: close() drops the mapping
        # and the creator's unlink() removes the name — an attacher-side
        # unlink would tear the segment out from under everyone else.
        assert not hits(
            """
            from multiprocessing import shared_memory

            def attach(name):
                segment = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(segment.buf)
                finally:
                    segment.close()
            """,
            "RES01",
        )

    def test_shared_memory_attach_without_close(self):
        found = hits(
            """
            from multiprocessing import shared_memory

            def attach(name):
                segment = shared_memory.SharedMemory(name=name)
                return bytes(segment.buf)
            """,
            "RES01",
        )
        assert len(found) == 1
        assert "close()" in found[0].message

    def test_returning_a_fresh_handle_is_the_callers_pairing(self):
        assert not hits(
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """,
            "RES01",
        )


# ----------------------------------------------------------------------
# API01 — broad exception handlers that swallow
# ----------------------------------------------------------------------
class TestApi01:
    def test_broad_except_pass(self):
        found = hits(
            """
            def guard(work):
                try:
                    work()
                except Exception:
                    pass
            """,
            "API01",
        )
        assert len(found) == 1

    def test_bare_except_continue(self):
        assert hits(
            """
            def drain(jobs):
                for job in jobs:
                    try:
                        job()
                    except:
                        continue
            """,
            "API01",
        )

    def test_specific_exception_pass_is_clean(self):
        assert not hits(
            """
            def guard(mapping, key):
                try:
                    return mapping[key]
                except KeyError:
                    return None
            """,
            "API01",
        )

    def test_reraise_is_clean(self):
        assert not hits(
            """
            def guard(work):
                try:
                    work()
                except Exception:
                    raise
            """,
            "API01",
        )

    def test_using_the_bound_error_is_clean(self):
        assert not hits(
            """
            def guard(work):
                try:
                    work()
                except Exception as error:
                    return str(error)
            """,
            "API01",
        )

    def test_recording_call_is_clean(self):
        assert not hits(
            """
            def guard(work, log):
                try:
                    work()
                except Exception:
                    log.warning("work failed")
            """,
            "API01",
        )


# ----------------------------------------------------------------------
# SLOT01 — hot-path dataclasses without __slots__
# ----------------------------------------------------------------------
DATACLASS = """
    from dataclasses import dataclass

    @dataclass
    class Box:
        x: int
"""


class TestSlot01:
    def test_hot_module_dataclass_without_slots(self):
        found = hits(DATACLASS, "SLOT01", path="src/repro/graph/widgets.py")
        assert len(found) == 1
        assert "Box" in found[0].message

    def test_scale_module_is_hot_too(self):
        assert hits(DATACLASS, "SLOT01", path="src/repro/scale/widgets.py")

    def test_cold_module_is_clean(self):
        assert not hits(DATACLASS, "SLOT01", path="src/repro/io/widgets.py")

    def test_slots_true_is_clean(self):
        assert not hits(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Box:
                x: int
            """,
            "SLOT01",
            path="src/repro/graph/widgets.py",
        )

    def test_explicit_dunder_slots_is_clean(self):
        assert not hits(
            """
            from dataclasses import dataclass

            @dataclass
            class Box:
                __slots__ = ("x",)
                x: int
            """,
            "SLOT01",
            path="src/repro/graph/widgets.py",
        )

    def test_frozen_without_slots_still_flagged(self):
        assert hits(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Box:
                x: int
            """,
            "SLOT01",
            path="src/repro/graph/widgets.py",
        )

    def test_plain_class_is_clean(self):
        assert not hits(
            """
            class Box:
                def __init__(self, x):
                    self.x = x
            """,
            "SLOT01",
            path="src/repro/graph/widgets.py",
        )


# ----------------------------------------------------------------------
# DUR01 — durable artefacts written outside fsync + os.replace
# ----------------------------------------------------------------------
DURABLE_PATH = "src/repro/durable/sample.py"
SCALE_PATH = "src/repro/scale/sample.py"


class TestDur01:
    def test_direct_write_in_durable_module(self):
        found = hits(
            """
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
            "DUR01",
            path=DURABLE_PATH,
        )
        assert len(found) == 1
        assert "os.replace" in found[0].message

    def test_scale_module_is_also_in_scope(self):
        assert hits(
            """
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """,
            "DUR01",
            path=SCALE_PATH,
        )

    def test_atomic_protocol_is_clean(self):
        assert not hits(
            """
            import os
            import tempfile

            def save(path, data):
                fd, temp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, path)
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_fsync_without_replace_still_flagged(self):
        assert hits(
            """
            import os

            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
                    os.fsync(handle.fileno())
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_replace_without_fsync_still_flagged(self):
        assert hits(
            """
            import os

            def save(path, temp, data):
                with open(temp, "wb") as handle:
                    handle.write(data)
                os.replace(temp, path)
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_read_and_update_modes_are_out_of_scope(self):
        assert not hits(
            """
            def scan(path):
                with open(path, "rb") as handle:
                    data = handle.read()
                handle = open(path, "r+b")
                handle.close()
                return data
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_path_open_write_method_is_flagged(self):
        assert hits(
            """
            def save(path, data):
                with path.open("w") as handle:
                    handle.write(data)
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_exclusive_create_mode_is_flagged(self):
        assert hits(
            """
            def save(path, data):
                with open(path, mode="xb") as handle:
                    handle.write(data)
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_alternate_constructor_open_is_not_a_write(self):
        assert not hits(
            """
            def reopen(path):
                return KeywordSearchEngine.open(path, "csr")
            """,
            "DUR01",
            path=DURABLE_PATH,
        )

    def test_other_modules_are_out_of_scope(self):
        assert not hits(
            """
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
            "DUR01",
        )


class TestRes01RawDescriptors:
    def test_os_close_by_argument_releases(self):
        assert not hits(
            """
            import os

            def fsync_directory(directory):
                fd = os.open(directory, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
            "RES01",
        )

    def test_inline_acquire_release_expression(self):
        assert not hits(
            """
            import os

            def touch_exclusively(path):
                os.close(os.open(path, os.O_CREAT | os.O_EXCL))
            """,
            "RES01",
        )

    def test_raw_descriptor_without_os_close_still_flagged(self):
        assert hits(
            """
            import os

            def fsync_directory(directory):
                fd = os.open(directory, os.O_RDONLY)
                os.fsync(fd)
            """,
            "RES01",
        )
