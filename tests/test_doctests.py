"""Run the doctests embedded in library docstrings."""

import doctest

import pytest

import repro.core.associations
import repro.er.cardinality
import repro.relational.index

_MODULES = [
    repro.er.cardinality,
    repro.core.associations,
    repro.relational.index,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0
