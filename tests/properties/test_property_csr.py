"""Property-based differential tests: the compiled CSR kernel.

Hypothesis drives synthetic database shapes and mutation sequences; on
every instance the CSR core must reproduce both existing cores exactly
— paths, joining trees, engine rankings under both semantics — and an
incrementally patched :class:`~repro.graph.csr.FrozenGraph` must answer
exactly like a freshly compiled one.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.graph.csr import (
    FrozenGraph,
    csr_enumerate_joining_trees,
    csr_enumerate_simple_paths,
)
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import enumerate_joining_trees, enumerate_simple_paths
from repro.live.changes import Delete, Insert, apply_to_database
from repro.live.maintain import apply_changeset

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=3),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=4),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=50),
)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def planted_engine(config):
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(2, database.count("EMPLOYEE")), seed=2)
    return KeywordSearchEngine(database)


class TestDifferentialInvariants:
    @relaxed
    @given(configs)
    def test_paths_identical_to_both_cores(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        cache = TraversalCache(engine.data_graph)
        for source in matches[0].tuple_ids:
            for target in matches[1].tuple_ids:
                if source == target:
                    continue
                brute = list(
                    enumerate_simple_paths(engine.data_graph, source, target, 4)
                )
                fast = list(
                    fast_enumerate_simple_paths(
                        engine.data_graph, source, target, 4, cache=cache
                    )
                )
                csr = list(
                    csr_enumerate_simple_paths(
                        engine.data_graph, source, target, 4, cache=cache
                    )
                )
                assert csr == brute
                assert csr == fast

    @relaxed
    @given(configs)
    def test_trees_identical_to_both_cores(self, config):
        engine = planted_engine(config)
        nodes = sorted(engine.data_graph.graph.nodes, key=str)
        cache = TraversalCache(engine.data_graph)
        for combo in zip(nodes[::5], nodes[1::5]):
            brute = list(
                enumerate_joining_trees(engine.data_graph, list(combo), 4)
            )
            fast = list(
                fast_enumerate_joining_trees(
                    engine.data_graph, list(combo), 4, cache=cache
                )
            )
            csr = list(
                csr_enumerate_joining_trees(
                    engine.data_graph, list(combo), 4, cache=cache
                )
            )
            assert csr == brute
            assert csr == fast

    @relaxed
    @given(configs, st.sampled_from(["and", "or"]))
    def test_engine_rankings_identical(self, config, semantics):
        database = planted_engine(config).database
        csr = KeywordSearchEngine(database, core="csr")
        fast = KeywordSearchEngine(database, core="fast")
        limits = SearchLimits(max_rdb_length=4, max_tuples=4)
        for query in ("kwalpha kwbeta", "kwalpha"):
            assert [
                (r.render(), r.score, r.rank)
                for r in csr.search(query, limits=limits, semantics=semantics)
            ] == [
                (r.render(), r.score, r.rank)
                for r in fast.search(query, limits=limits, semantics=semantics)
            ]


def _structural_mutations(database, salts):
    """Derive a valid mutation per salt from the current database state."""
    mutations = []
    for counter, salt in enumerate(salts):
        employees = database.tuples("EMPLOYEE")
        if salt % 3 == 2:
            victims = database.tuples("DEPENDENT")
            if victims:
                mutations.append([Delete(victims[salt % len(victims)].tid)])
                apply_to_database(database, mutations[-1])
                continue
        essn = employees[salt % len(employees)].tid.key[0]
        batch = [
            Insert(
                "DEPENDENT",
                {"ID": f"hz{counter}", "ESSN": essn,
                 "DEPENDENT_NAME": f"name{salt % 5}"},
            )
        ]
        apply_to_database(database, batch)
        mutations.append(batch)
    return mutations


class TestPatchedFrozenGraph:
    @relaxed
    @given(
        configs,
        st.lists(st.integers(min_value=0, max_value=1 << 16),
                 min_size=1, max_size=5),
    )
    def test_patched_equals_recompiled(self, config, salts):
        database = generate_company_like(config)
        replay = generate_company_like(config)
        graph = DataGraph(database)
        cache = TraversalCache(graph)
        frozen = cache.frozen()
        for batch in _structural_mutations(replay, salts):
            changeset = apply_to_database(database, batch)
            apply_changeset(
                changeset, database, data_graph=graph, traversal_cache=cache
            )
        if frozen.compactions == 0:
            assert cache.frozen() is frozen
        recompiled = FrozenGraph(graph)
        live = cache.frozen()
        assert live.live_count() == recompiled.live_count()
        nodes = sorted(graph.graph.nodes, key=str)
        sample = nodes[:: max(1, len(nodes) // 6)]
        for source in sample:
            for target in sample:
                if source == target:
                    continue
                assert list(
                    csr_enumerate_simple_paths(graph, source, target, 4,
                                               cache=cache)
                ) == list(
                    enumerate_simple_paths(graph, source, target, 4)
                )
        for combo in zip(sample, sample[1:]):
            assert list(
                csr_enumerate_joining_trees(graph, list(combo), 4, cache=cache)
            ) == list(
                enumerate_joining_trees(graph, list(combo), 4)
            )


class TestVectorBlocksIdentical:
    """Multi-source BFS blocks equal per-source scalar rows, always.

    The block sweep on the vector backend (and its scalar fallback)
    must reproduce the one-source reference BFS row for row — on fresh
    graphs and after arbitrary mutation sequences, including tombstoned
    overrides and compaction-triggered recompiles.  When numpy is
    absent both graphs are scalar and the property still holds.
    """

    @relaxed
    @given(configs)
    def test_block_rows_equal_scalar_rows(self, config):
        graph = DataGraph(generate_company_like(config))
        scalar = FrozenGraph(graph, vector=False)
        vector = FrozenGraph(graph)
        sources = list(range(0, vector.capacity, 2))
        block = vector.distances_block(sources)
        for node in sources:
            assert block[node] == scalar.distances(node)
        assert vector.components() == scalar.components()

    @relaxed
    @given(
        configs,
        st.lists(st.integers(min_value=0, max_value=1 << 16),
                 min_size=1, max_size=5),
        st.booleans(),
    )
    def test_block_rows_equal_after_mutations(self, config, salts, compact):
        database = generate_company_like(config)
        replay = generate_company_like(config)
        graph = DataGraph(database)
        scalar = FrozenGraph(graph, vector=False)
        vector = FrozenGraph(graph)
        if compact:  # force the recompile path on some examples
            for frozen in (scalar, vector):
                frozen.compaction_threshold = 0.0
                frozen.min_compaction_nodes = 1
        for batch in _structural_mutations(replay, salts):
            changeset = apply_to_database(database, batch)
            apply_changeset(changeset, database, data_graph=graph)
            scalar.apply_changeset(changeset)
            vector.apply_changeset(changeset)
        assert scalar.compactions == vector.compactions
        sources = list(range(0, vector.capacity, 2))
        block = vector.distances_block(sources)
        for node in sources:
            assert block[node] == scalar.distances(node)
        assert vector.components() == scalar.components()
