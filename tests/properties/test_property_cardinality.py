"""Property-based tests for the cardinality algebra and classifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.associations import classify_cardinalities, loose_joints
from repro.er.cardinality import Cardinality, compose_path

cardinalities = st.sampled_from(
    [
        Cardinality.parse("1:1"),
        Cardinality.parse("1:N"),
        Cardinality.parse("N:1"),
        Cardinality.parse("N:M"),
    ]
)
sequences = st.lists(cardinalities, min_size=1, max_size=8)


class TestCompositionAlgebra:
    @given(sequences, sequences)
    def test_composition_is_associative(self, left, right):
        joined = compose_path(left + right)
        stepwise = compose_path(left).compose(compose_path(right))
        assert joined == stepwise

    @given(sequences)
    def test_reversal_antihomomorphism(self, sequence):
        forward = compose_path(sequence)
        backward = compose_path([c.reversed() for c in reversed(sequence)])
        assert backward == forward.reversed()

    @given(cardinalities)
    def test_one_to_one_is_identity(self, cardinality):
        identity = Cardinality.one_to_one()
        assert identity.compose(cardinality) == cardinality
        assert cardinality.compose(identity) == cardinality

    @given(sequences)
    def test_an_nm_step_anywhere_kills_functionality(self, sequence):
        extended = sequence + [Cardinality.many_to_many()]
        assert not compose_path(extended).is_functional

    @given(sequences)
    def test_forward_functional_iff_all_rights_one(self, sequence):
        composed = compose_path(sequence)
        assert composed.forward_functional == all(
            c.right.is_one for c in sequence
        )

    @given(sequences)
    def test_backward_functional_iff_all_lefts_one(self, sequence):
        composed = compose_path(sequence)
        assert composed.backward_functional == all(
            c.left.is_one for c in sequence
        )


class TestClassifierInvariants:
    @given(sequences)
    def test_functional_paths_never_have_loose_joints(self, sequence):
        verdict = classify_cardinalities(sequence)
        if verdict.composed.is_functional:
            assert verdict.loose_joint_positions == ()

    @given(sequences)
    def test_loose_joint_implies_loose_composition(self, sequence):
        verdict = classify_cardinalities(sequence)
        if verdict.loose_joint_positions:
            assert verdict.composed.is_many_to_many

    @given(sequences)
    def test_close_iff_immediate_or_functional(self, sequence):
        verdict = classify_cardinalities(sequence)
        expected = len(sequence) == 1 or verdict.composed.is_functional
        assert verdict.is_close is expected

    @given(sequences)
    def test_direction_invariance_of_closeness(self, sequence):
        forward = classify_cardinalities(sequence)
        backward = classify_cardinalities(
            [c.reversed() for c in reversed(sequence)]
        )
        assert forward.is_close == backward.is_close

    @given(sequences)
    def test_joint_count_direction_invariant(self, sequence):
        forward = classify_cardinalities(sequence)
        backward = classify_cardinalities(
            [c.reversed() for c in reversed(sequence)]
        )
        assert forward.loose_joint_count == backward.loose_joint_count

    @given(sequences)
    def test_joints_are_within_bounds(self, sequence):
        for joint in loose_joints(sequence):
            assert 0 <= joint < len(sequence) - 1

    @given(sequences, sequences)
    def test_monotonicity_of_looseness_under_concatenation(self, left, right):
        # Extending a path can never make a loose composition functional...
        combined = classify_cardinalities(left + right)
        if not classify_cardinalities(left).composed.is_functional:
            assert not combined.composed.is_functional

    @given(sequences)
    def test_verdict_is_deterministic(self, sequence):
        assert classify_cardinalities(sequence) == classify_cardinalities(sequence)
