"""Property-based tests: the query pipeline is bit-identical to legacy.

Hypothesis drives synthetic database shapes, query shapes (AND/OR, one,
two and three keywords), top-k cuts and both traversal cores; on every
instance the planner/executor pipeline — full mode, pushdown mode and
the streaming entry point — must reproduce the legacy
enumerate-sort-cut results exactly: answers, order, scores and ranks.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
)
from repro.core.search import SearchLimits
from repro.core.topk import top_k_connections
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=3),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=4),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=50),
)

rankers = st.sampled_from(
    [ClosenessRanker(), RdbLengthRanker(), ErLengthRanker(),
     InstanceAmbiguityRanker()]
)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)


def planted_engine(config, use_fast_traversal=True):
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(2, database.count("EMPLOYEE")), seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION",
          min(2, database.count("PROJECT")), seed=3)
    return KeywordSearchEngine(database, use_fast_traversal=use_fast_traversal)


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


class TestPushdownIdentity:
    @relaxed
    @given(configs, rankers, st.integers(min_value=1, max_value=8),
           st.sampled_from(["and", "or"]))
    def test_top_k_identical_to_full_enumeration(self, config, ranker, k,
                                                 semantics):
        engine = planted_engine(config)
        for query in ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha"):
            pushed = engine.search(
                query, ranker=ranker, limits=_LIMITS, top_k=k,
                semantics=semantics,
            )
            full = engine.search(
                query, ranker=ranker, limits=_LIMITS, top_k=k,
                semantics=semantics, pushdown=False,
            )
            assert rendered(pushed) == rendered(full)

    @relaxed
    @given(configs, st.sampled_from(["and", "or"]))
    def test_forced_streaming_identical_without_cut(self, config, semantics):
        engine = planted_engine(config)
        for query in ("kwalpha kwbeta", "kwalpha kwbeta kwgamma"):
            streamed = engine.search(
                query, limits=_LIMITS, semantics=semantics, pushdown=True
            )
            full = engine.search(
                query, limits=_LIMITS, semantics=semantics, pushdown=False
            )
            assert rendered(streamed) == rendered(full)

    @relaxed
    @given(configs, st.integers(min_value=1, max_value=5))
    def test_both_cores_agree_under_pushdown(self, config, k):
        fast = planted_engine(config)
        slow = planted_engine(config, use_fast_traversal=False)
        for query in ("kwalpha kwbeta", "kwalpha kwbeta kwgamma"):
            assert rendered(
                fast.search(query, limits=_LIMITS, top_k=k)
            ) == rendered(
                slow.search(query, limits=_LIMITS, top_k=k)
            )


class TestStreamingIdentity:
    @relaxed
    @given(configs, st.sampled_from(["and", "or"]))
    def test_stream_equals_search(self, config, semantics):
        engine = planted_engine(config)
        for query in ("kwalpha kwbeta", "kwalpha kwbeta kwgamma"):
            streamed = list(
                engine.search_stream(query, limits=_LIMITS,
                                     semantics=semantics)
            )
            materialised = engine.search(
                query, limits=_LIMITS, semantics=semantics
            )
            assert rendered(streamed) == rendered(materialised)


class TestBatchSharing:
    @relaxed
    @given(configs)
    def test_batch_with_shared_subplans_matches_sequential(self, config):
        engine = planted_engine(config)
        # Case variants and overlapping keyword sets share enumeration
        # sub-plans across distinct query texts.
        queries = ["kwalpha kwbeta", "KWALPHA KWBETA",
                   "kwalpha kwbeta kwgamma", "kwbeta kwgamma"]
        batched = engine.search_batch(queries, limits=_LIMITS)
        sequential = [engine.search(query, limits=_LIMITS)
                      for query in queries]
        assert [rendered(results) for results in batched] == [
            rendered(results) for results in sequential
        ]

    @relaxed
    @given(configs, st.integers(min_value=1, max_value=5))
    def test_batch_top_k_matches_sequential(self, config, k):
        engine = planted_engine(config)
        queries = ["kwalpha kwbeta", "kwalpha KWBETA"]
        batched = engine.search_batch(queries, limits=_LIMITS, top_k=k)
        sequential = [engine.search(query, limits=_LIMITS, top_k=k)
                      for query in queries]
        assert [rendered(results) for results in batched] == [
            rendered(results) for results in sequential
        ]


class TestTopKApi:
    @relaxed
    @given(configs, rankers, st.integers(min_value=1, max_value=6))
    def test_top_k_connections_both_cores_identical(self, config, ranker, k):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        fast = top_k_connections(
            engine.data_graph, matches, ranker, k, _LIMITS,
            cache=engine.traversal_cache,
        )
        slow = top_k_connections(
            engine.data_graph, matches, ranker, k, _LIMITS,
            use_fast_traversal=False,
        )
        assert [(c.render(), s) for c, s in fast] == [
            (c.render(), s) for c, s in slow
        ]
