"""Property-based differential tests: fast traversal vs brute force.

Hypothesis drives synthetic database shapes; on every generated instance
the pruned traversal core must reproduce the brute-force enumeration
exactly — paths, joining trees and end-to-end engine rankings.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import enumerate_joining_trees, enumerate_simple_paths

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=3),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=4),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=50),
)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def planted_engine(config):
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(2, database.count("EMPLOYEE")), seed=2)
    return KeywordSearchEngine(database)


class TestDifferentialInvariants:
    @relaxed
    @given(configs)
    def test_paths_identical_between_planted_tuples(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        cache = TraversalCache(engine.data_graph)
        for source in matches[0].tuple_ids:
            for target in matches[1].tuple_ids:
                if source == target:
                    continue
                brute = list(
                    enumerate_simple_paths(engine.data_graph, source, target, 4)
                )
                fast = list(
                    fast_enumerate_simple_paths(
                        engine.data_graph, source, target, 4, cache=cache
                    )
                )
                assert fast == brute

    @relaxed
    @given(configs)
    def test_joining_trees_identical(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        cache = TraversalCache(engine.data_graph)
        required = [matches[0].tuple_ids[0], matches[1].tuple_ids[0]]
        brute = list(enumerate_joining_trees(engine.data_graph, required, 4))
        fast = list(
            fast_enumerate_joining_trees(
                engine.data_graph, required, 4, cache=cache
            )
        )
        assert fast == brute

    @relaxed
    @given(configs)
    def test_connection_enumeration_identical(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        limits = SearchLimits(max_rdb_length=4)
        fast = [
            answer.render()
            for answer in find_connections(engine.data_graph, matches, limits)
        ]
        brute = [
            answer.render()
            for answer in find_connections(
                engine.data_graph, matches, limits, use_fast_traversal=False
            )
        ]
        assert fast == brute

    @relaxed
    @given(configs)
    def test_engine_ranking_identical(self, config):
        fast_engine = planted_engine(config)
        brute_engine = KeywordSearchEngine(
            fast_engine.database, use_fast_traversal=False
        )
        fast = fast_engine.search("kwalpha kwbeta")
        brute = brute_engine.search("kwalpha kwbeta")
        assert [(r.render(), r.score, r.rank) for r in fast] == [
            (r.render(), r.score, r.rank) for r in brute
        ]

    @relaxed
    @given(configs)
    def test_batch_matches_sequential_search(self, config):
        engine = planted_engine(config)
        queries = ["kwalpha kwbeta", "kwalpha kwbeta", "kwbeta kwalpha"]
        batched = engine.search_batch(queries)
        sequential = [engine.search(query) for query in queries]
        assert [
            [(r.render(), r.score) for r in results] for results in batched
        ] == [
            [(r.render(), r.score) for r in results] for results in sequential
        ]
