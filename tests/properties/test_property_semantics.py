"""Cross-level properties: schema verdicts predict instance behaviour.

The paper's whole argument rests on one implication: a *transitive
functional* cardinality sequence guarantees an unambiguous association at
the extensional level.  These tests verify that implication mechanically —
for generated chain schemas and instances, the classifier's verdict is
checked against the actual end-to-end tuple relation computed by joining.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.associations import classify_cardinalities
from repro.datasets.schemas import chain_schema, instantiate_er
from repro.er.cardinality import Cardinality

cardinality_texts = st.sampled_from(["1:1", "1:N", "N:1", "N:M"])
chains = st.lists(cardinality_texts, min_size=1, max_size=3)

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def end_to_end_pairs(database, mapping, schema, chain):
    """All (first, last) tuple-id pairs related through the whole chain.

    Walks the chain relation by relation, following the foreign key (or
    middle relation) that implements each relationship.
    """
    pairs = {
        (record.tid, record.tid) for record in database.tuples("E0")
    }
    for index, __ in enumerate(chain):
        relationship = schema.relationship(f"R{index}")
        next_pairs = set()
        if relationship.cardinality.is_many_to_many:
            middle_name = mapping.relation_of_relationship[relationship.name]
            left_fk, right_fk = (
                mapping.schema.foreign_key(name)
                for name in mapping.middle_fks[relationship.name]
            )
            links = set()
            for middle in database.tuples(middle_name):
                left = database.referenced_tuple(middle, left_fk)
                right = database.referenced_tuple(middle, right_fk)
                if left and right:
                    links.add((left.tid, right.tid))
            for start, current in pairs:
                for left_tid, right_tid in links:
                    if left_tid == current:
                        next_pairs.add((start, right_tid))
        else:
            fk = mapping.schema.foreign_key(
                mapping.fk_of_relationship[relationship.name]
            )
            holder_is_right = fk.source == f"E{index + 1}"
            for record in database.tuples(fk.source):
                target = database.referenced_tuple(record, fk)
                if target is None:
                    continue
                if holder_is_right:
                    link = (target.tid, record.tid)
                else:
                    link = (record.tid, target.tid)
                for start, current in pairs:
                    if link[0] == current:
                        next_pairs.add((start, link[1]))
        pairs = next_pairs
    return pairs


class TestFunctionalVerdictHoldsOnInstances:
    @relaxed
    @given(chains, st.integers(min_value=0, max_value=30))
    def test_forward_functional_is_single_valued(self, chain, seed):
        """If the composition is left-to-right functional, every E0 tuple
        reaches at most one terminal tuple."""
        verdict = classify_cardinalities(
            [Cardinality.parse(text) for text in chain]
        )
        schema = chain_schema(chain)
        database, mapping = instantiate_er(schema, per_entity=4, seed=seed)
        pairs = end_to_end_pairs(database, mapping, schema, chain)
        if verdict.composed.forward_functional:
            starts = [start for start, __ in pairs]
            assert len(starts) == len(set(starts))

    @relaxed
    @given(chains, st.integers(min_value=0, max_value=30))
    def test_backward_functional_is_single_valued(self, chain, seed):
        """If the composition is right-to-left functional, every terminal
        tuple is reached from at most one E0 tuple."""
        verdict = classify_cardinalities(
            [Cardinality.parse(text) for text in chain]
        )
        schema = chain_schema(chain)
        database, mapping = instantiate_er(schema, per_entity=4, seed=seed)
        pairs = end_to_end_pairs(database, mapping, schema, chain)
        if verdict.composed.backward_functional:
            ends = [end for __, end in pairs]
            assert len(ends) == len(set(ends))

    @relaxed
    @given(st.integers(min_value=0, max_value=30))
    def test_transitive_nm_joint_invents_associations(self, seed):
        """The canonical loose chain N:1 · 1:N relates entities through the
        shared middle even when the instance never links them directly —
        with enough tuples, some end entity is reached from several
        starts."""
        chain = ["N:1", "1:N"]
        schema = chain_schema(chain)
        database, mapping = instantiate_er(schema, per_entity=6, seed=seed)
        pairs = end_to_end_pairs(database, mapping, schema, chain)
        ends = [end for __, end in pairs]
        # The association is invented at middles shared by several starts
        # *and* fanning out to at least one end: each such middle's ends are
        # then reached from several starts.
        first_fk = mapping.schema.foreign_key(mapping.fk_of_relationship["R0"])
        second_fk = mapping.schema.foreign_key(mapping.fk_of_relationship["R1"])
        starts_per_middle: dict = {}
        for record in database.tuples("E0"):
            middle = database.referenced_tuple(record, first_fk)
            if middle is not None:
                starts_per_middle[middle.tid] = (
                    starts_per_middle.get(middle.tid, 0) + 1
                )
        ends_per_middle: dict = {}
        for record in database.tuples("E2"):
            middle = database.referenced_tuple(record, second_fk)
            if middle is not None:
                ends_per_middle[middle.tid] = (
                    ends_per_middle.get(middle.tid, 0) + 1
                )
        invents = any(
            starts_per_middle.get(middle, 0) >= 2 and count >= 1
            for middle, count in ends_per_middle.items()
        )
        if invents:
            assert len(ends) != len(set(ends))
