"""Property-based tests over generated databases: search invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.discover import find_mtjnts, is_mtjnt, is_total
from repro.core.connections import Connection
from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=3),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=4),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=50),
)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def planted_engine(config, counts=(2, 2)):
    database = generate_company_like(config)
    first = min(counts[0], database.count("DEPARTMENT"))
    second = min(counts[1], database.count("EMPLOYEE"))
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", first, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", second, seed=2)
    return KeywordSearchEngine(database)


class TestConnectionInvariants:
    @relaxed
    @given(configs)
    def test_connections_cover_both_keywords(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        for answer in find_connections(
            engine.data_graph, matches, SearchLimits(max_rdb_length=3)
        ):
            if not isinstance(answer, Connection):
                continue
            covered = set()
            for keywords in answer.keyword_matches.values():
                covered |= keywords
            assert {"kwalpha", "kwbeta"} <= covered

    @relaxed
    @given(configs)
    def test_er_length_bounded_by_rdb_length(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        for answer in find_connections(
            engine.data_graph, matches, SearchLimits(max_rdb_length=4)
        ):
            if isinstance(answer, Connection):
                assert 1 <= answer.er_length <= answer.rdb_length
                middles = len(answer.middle_tuples())
                assert answer.er_length == answer.rdb_length - middles

    @relaxed
    @given(configs)
    def test_paths_are_simple(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        for answer in find_connections(
            engine.data_graph, matches, SearchLimits(max_rdb_length=4)
        ):
            if isinstance(answer, Connection):
                members = answer.tuple_ids()
                assert len(members) == len(set(members))

    @relaxed
    @given(configs)
    def test_search_is_deterministic(self, config):
        engine = planted_engine(config)
        first = [r.answer.render() for r in engine.search("kwalpha kwbeta")]
        second = [r.answer.render() for r in engine.search("kwalpha kwbeta")]
        assert first == second

    @relaxed
    @given(configs)
    def test_scores_non_decreasing(self, config):
        engine = planted_engine(config)
        results = engine.search("kwalpha kwbeta")
        scores = [r.score for r in results]
        assert scores == sorted(scores)


class TestMtjntInvariants:
    @relaxed
    @given(configs)
    def test_every_mtjnt_is_connected_total_minimal(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        for members in find_mtjnts(
            engine.data_graph, matches, SearchLimits(max_tuples=4)
        ):
            assert engine.data_graph.is_connected_set(members)
            assert is_total(members, matches)
            # Brute-force minimality: no single-tuple removal survives.
            for tid in members:
                rest = members - {tid}
                assert not (
                    rest
                    and engine.data_graph.is_connected_set(rest)
                    and is_total(rest, matches)
                )

    @relaxed
    @given(configs)
    def test_mtjnts_unique(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        results = find_mtjnts(
            engine.data_graph, matches, SearchLimits(max_tuples=4)
        )
        assert len(results) == len(set(results))

    @relaxed
    @given(configs)
    def test_is_mtjnt_agrees_with_enumeration(self, config):
        engine = planted_engine(config)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        enumerated = set(
            find_mtjnts(engine.data_graph, matches, SearchLimits(max_tuples=3))
        )
        for members in enumerated:
            assert is_mtjnt(engine.data_graph, members, matches)
