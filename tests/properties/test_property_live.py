"""Differential property: live updates are invisible to query answering.

Hypothesis drives random interleavings of ``engine.apply`` mutation
batches (dependent/works-on inserts, description updates that create and
destroy keyword matches, deletes) with queries; after every step the
live engine's ``search`` / ``search_batch`` / ``search_stream`` must be
bit-identical — answers, order, scores, ranks, and ``SearchLimitError``
points — to a from-scratch engine built over an identical database kept
in lockstep.  Both traversal cores and both semantics are exercised.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.errors import SearchLimitError
from repro.live.changes import Delete, Insert, Update, apply_to_database

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=2),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=3),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=30),
)

_KINDS = ("insert_dependent", "insert_works", "update_description", "delete")

operations = st.lists(
    st.tuples(st.sampled_from(_KINDS), st.integers(min_value=0, max_value=1 << 20)),
    min_size=1,
    max_size=6,
)

relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
_QUERIES = ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha")


def planted_database(config):
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(2, database.count("EMPLOYEE")), seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION",
          min(2, database.count("PROJECT")), seed=3)
    return database


def build_mutation(database, kind, salt, counter):
    """Deterministically derive one valid mutation from the current state."""
    employees = database.tuples("EMPLOYEE")
    if kind == "insert_dependent":
        essn = employees[salt % len(employees)].tid.key[0]
        name = ("kwbeta", "kwalpha", "plainname")[salt % 3]
        return Insert(
            "DEPENDENT",
            {"ID": f"hp{counter}", "ESSN": essn, "DEPENDENT_NAME": name},
        )
    if kind == "insert_works":
        projects = database.tuples("PROJECT")
        pairs = len(employees) * len(projects)
        for probe in range(pairs):
            position = (salt + probe) % pairs
            essn = employees[position // len(projects)].tid.key[0]
            pid = projects[position % len(projects)].tid.key[0]
            if database.get("WORKS_FOR", essn, pid) is None:
                return Insert(
                    "WORKS_FOR",
                    {"ESSN": essn, "P_ID": pid, "HOURS": salt % 40 + 1},
                )
        return None  # N:M already complete
    if kind == "update_description":
        departments = database.tuples("DEPARTMENT")
        department = departments[salt % len(departments)]
        text = ("kwalpha research", "plain words only",
                "kwgamma and kwalpha notes")[salt % 3]
        return Update(department.tid, {"D_DESCRIPTION": text})
    # delete: dependents and works-on rows are never referenced.
    victims = database.tuples("DEPENDENT") + database.tuples("WORKS_FOR")
    if not victims:
        return None
    return Delete(victims[salt % len(victims)].tid)


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


def run_interleaving(config, ops, fast):
    """Yield (live engine, lockstep oracle database) after each batch."""
    live_db = planted_database(config)
    oracle_db = planted_database(config)
    engine = KeywordSearchEngine(live_db, use_fast_traversal=fast)
    yield engine, oracle_db
    for counter, (kind, salt) in enumerate(ops):
        mutation = build_mutation(live_db, kind, salt, counter)
        batch = [] if mutation is None else [mutation]
        engine.apply(batch)
        apply_to_database(oracle_db, batch)
        yield engine, oracle_db


class TestInterleavingDifferential:
    @relaxed
    @given(configs, operations, st.booleans())
    def test_search_matches_rebuilt_engine_at_every_step(
        self, config, ops, fast
    ):
        for engine, oracle_db in run_interleaving(config, ops, fast):
            oracle = KeywordSearchEngine(
                oracle_db, use_fast_traversal=fast, result_cache_entries=0
            )
            for query in _QUERIES:
                for semantics in ("and", "or"):
                    assert rendered(
                        engine.search(query, limits=_LIMITS,
                                      semantics=semantics)
                    ) == rendered(
                        oracle.search(query, limits=_LIMITS,
                                      semantics=semantics)
                    )

    @relaxed
    @given(configs, operations, st.booleans(),
           st.integers(min_value=1, max_value=5))
    def test_stream_batch_and_topk_after_mutations(self, config, ops, fast, k):
        final = None
        for final in run_interleaving(config, ops, fast):
            pass
        engine, oracle_db = final
        oracle = KeywordSearchEngine(
            oracle_db, use_fast_traversal=fast, result_cache_entries=0
        )
        queries = list(_QUERIES)
        assert [
            rendered(r) for r in engine.search_batch(queries, limits=_LIMITS)
        ] == [rendered(oracle.search(q, limits=_LIMITS)) for q in queries]
        for query in queries:
            assert rendered(
                list(engine.search_stream(query, limits=_LIMITS))
            ) == rendered(oracle.search(query, limits=_LIMITS))
            assert rendered(
                engine.search(query, limits=_LIMITS, top_k=k)
            ) == rendered(
                oracle.search(query, limits=_LIMITS, top_k=k, pushdown=False)
            )

    @relaxed
    @given(configs, operations, st.booleans())
    def test_budget_error_points_identical(self, config, ops, fast):
        tight = SearchLimits(
            max_rdb_length=4, max_tuples=5,
            max_paths_per_pair=2, max_networks=2,
        )

        def outcome(target, query):
            try:
                return ("ok", rendered(target.search(query, limits=tight)))
            except SearchLimitError as error:
                return ("limit", str(error))

        for engine, oracle_db in run_interleaving(config, ops, fast):
            oracle = KeywordSearchEngine(
                oracle_db, use_fast_traversal=fast, result_cache_entries=0
            )
            for query in _QUERIES:
                assert outcome(engine, query) == outcome(oracle, query)

    @relaxed
    @given(configs, operations)
    def test_cores_agree_after_mutations(self, config, ops):
        fast_pair = None
        slow_pair = None
        for fast_pair in run_interleaving(config, ops, True):
            pass
        for slow_pair in run_interleaving(config, ops, False):
            pass
        fast_engine, __ = fast_pair
        slow_engine, __ = slow_pair
        for query in _QUERIES:
            for semantics in ("and", "or"):
                assert rendered(
                    fast_engine.search(query, limits=_LIMITS,
                                       semantics=semantics)
                ) == rendered(
                    slow_engine.search(query, limits=_LIMITS,
                                       semantics=semantics)
                )
