"""Durability property: any crash prefix of the WAL replays exactly.

Hypothesis drives random mutation batches through a WAL-attached engine,
then truncates the log at an arbitrary byte boundary — the only shape a
crashed append can leave.  Reopening snapshot + truncated WAL must be
bit-identical (state and answers) to an engine that rebuilt from the
same snapshot and executed exactly the surviving prefix of batches
live.  Corruption *inside* the log (not at the tail) must refuse.
"""

import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.durable.wal import WriteAheadLog, default_wal_path
from repro.live.changes import Delete, Insert, Update
from repro.relational.database import TupleId

relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=2),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=1, max_value=3),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=30),
)

_KINDS = ("insert_dependent", "update_description", "delete_dependent")

operations = st.lists(
    st.tuples(st.sampled_from(_KINDS),
              st.integers(min_value=0, max_value=1 << 20)),
    min_size=1,
    max_size=5,
)

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
_QUERIES = ("kwalpha kwbeta", "kwalpha")


def planted_database(config):
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(2, database.count("EMPLOYEE")), seed=2)
    return database


def build_mutation(database, kind, salt, counter):
    employees = database.tuples("EMPLOYEE")
    if kind == "insert_dependent":
        essn = employees[salt % len(employees)].tid.key[0]
        name = ("kwbeta", "kwalpha", "plainname")[salt % 3]
        return Insert(
            "DEPENDENT",
            {"ID": f"dur{counter}", "ESSN": essn, "DEPENDENT_NAME": name},
        )
    if kind == "update_description":
        departments = database.tuples("DEPARTMENT")
        department = departments[salt % len(departments)]
        text = ("kwalpha research", "plain words only",
                "kwbeta and kwalpha notes")[salt % 3]
        return Update(department.tid, {"D_DESCRIPTION": text})
    victims = database.tuples("DEPENDENT")
    if not victims:
        return None
    return Delete(victims[salt % len(victims)].tid)


def state_of(engine):
    database = engine.database
    return engine.version, {
        name: [
            (key, dict(database.tuple(TupleId(name, key)).values))
            for key in database.relation_key_order(name)
        ]
        for name in sorted(r.name for r in database.schema.relations)
    }


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


class TestTruncationProperty:
    @relaxed
    @given(configs, operations, st.data())
    def test_any_byte_truncation_replays_the_applied_prefix(
        self, config, ops, data
    ):
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "e.snap")
            engine = KeywordSearchEngine(planted_database(config))
            engine.save(path)
            engine.attach_wal()
            for counter, (kind, salt) in enumerate(ops):
                mutation = build_mutation(
                    engine.database, kind, salt, counter
                )
                engine.apply([] if mutation is None else [mutation])
            engine.close()

            wal_path = default_wal_path(path)
            probe = WriteAheadLog(wal_path)
            record_offsets = [offset for offset, __ in probe.scan()]
            data_offset = probe._data_offset
            probe.close()
            size = os.path.getsize(wal_path)
            cut = data.draw(
                st.integers(min_value=data_offset, max_value=size),
                label="truncation_point",
            )

            # Crash copy: same snapshot, log cut at an arbitrary byte.
            crash = os.path.join(workdir, "crash.snap")
            shutil.copyfile(path, crash)
            shutil.copyfile(wal_path, default_wal_path(crash))
            with open(default_wal_path(crash), "r+b") as handle:
                handle.truncate(cut)

            surviving = sum(1 for offset in record_offsets if offset < cut
                            if self._complete(offset, record_offsets,
                                              size, cut))
            reopened = KeywordSearchEngine.open(crash, wal=True)
            assert reopened.version == surviving

            # Oracle: rebuild from the same snapshot, execute the
            # surviving prefix of batches live.
            oracle = KeywordSearchEngine.open(path)
            for counter, (kind, salt) in enumerate(ops[:surviving]):
                mutation = build_mutation(
                    oracle.database, kind, salt, counter
                )
                oracle.apply([] if mutation is None else [mutation])

            assert state_of(reopened) == state_of(oracle)
            for query in _QUERIES:
                assert rendered(
                    reopened.search(query, limits=_LIMITS)
                ) == rendered(oracle.search(query, limits=_LIMITS))
            reopened.close()
            oracle.close()

    @staticmethod
    def _complete(offset, record_offsets, size, cut):
        """Does the record at ``offset`` survive a cut at ``cut``?"""
        position = record_offsets.index(offset)
        end = (record_offsets[position + 1]
               if position + 1 < len(record_offsets) else size)
        return end <= cut

    @relaxed
    @given(configs, operations,
           st.integers(min_value=0, max_value=1 << 20))
    def test_mid_file_corruption_refuses(self, config, ops, salt):
        import pytest

        from repro.errors import WalError

        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "e.snap")
            engine = KeywordSearchEngine(planted_database(config))
            engine.save(path)
            engine.attach_wal()
            for counter, (kind, salt_op) in enumerate(ops):
                mutation = build_mutation(
                    engine.database, kind, salt_op, counter
                )
                engine.apply([] if mutation is None else [mutation])
            engine.close()

            wal_path = default_wal_path(path)
            probe = WriteAheadLog(wal_path)
            offsets = [offset for offset, __ in probe.scan()]
            probe.close()
            if len(offsets) < 2:
                return  # need a non-final record to corrupt
            # Flip one payload byte of the *first* record: its CRC then
            # fails before EOF — damage truncation cannot explain.  (A
            # corrupted length prefix may masquerade as a torn tail, so
            # only payload bytes guarantee a refusal.)
            payload_start = offsets[0] + 8
            position = payload_start + salt % (offsets[1] - payload_start)
            with open(wal_path, "r+b") as handle:
                handle.seek(position)
                byte = handle.read(1)
                handle.seek(position)
                handle.write(bytes([byte[0] ^ 0xFF]))

            with pytest.raises(WalError):
                engine = KeywordSearchEngine.open(path, wal=True)
                engine.close()
