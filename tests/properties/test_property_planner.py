"""Property: calibration state never changes answer sets.

The calibration table biases cost *estimates* — ordering and routing
inputs only.  Hypothesis injects arbitrary (even wildly wrong)
observations into an adaptive engine's table and checks that every
answer, score and rank stays bit-identical to a pristine static engine,
with and without a top-k cut, under both semantics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=4)
_QUERIES = ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha")


def _database(seed: int):
    database = generate_company_like(
        SyntheticConfig(
            departments=2,
            projects_per_department=2,
            employees_per_department=3,
            works_on_per_employee=2,
            dependents_per_employee=0.3,
            seed=seed,
        )
    )
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(3, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(3, database.count("EMPLOYEE")), seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION",
          min(2, database.count("PROJECT")), seed=3)
    return database


def _snap(results):
    return [(r.render(), r.score, r.rank) for r in results]


observations = st.lists(
    st.tuples(
        st.sampled_from(["paths", "networks"]),
        st.floats(min_value=0.1, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=8,
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=15),
    injected=observations,
    semantics=st.sampled_from(["and", "or"]),
    top_k=st.sampled_from([None, 2]),
)
def test_calibration_never_changes_answers(seed, injected, semantics, top_k):
    database = _database(seed)
    static = KeywordSearchEngine(database, adaptive=False)
    adaptive = KeywordSearchEngine(database, adaptive=True)
    for kind, predicted, observed in injected:
        adaptive.calibration.observe(kind, predicted, observed)
    for query in _QUERIES:
        expected = _snap(static.search(
            query, limits=_LIMITS, top_k=top_k, semantics=semantics))
        observed_results = _snap(adaptive.search(
            query, limits=_LIMITS, top_k=top_k, semantics=semantics))
        assert observed_results == expected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=15),
    injected=observations,
)
def test_calibration_never_changes_query_cost_validity(seed, injected):
    """query_cost stays finite and positive under any calibration."""
    database = _database(seed)
    engine = KeywordSearchEngine(database, adaptive=True)
    for kind, predicted, observed in injected:
        engine.calibration.observe(kind, predicted, observed)
    for query in _QUERIES:
        cost = engine.query_cost(query)
        assert cost >= 1.0
        assert cost < float("inf")
