"""Observability properties: observe-only, and deterministic shapes.

Two contracts from DESIGN.md's observability section:

* enabling tracing/metrics never changes answers, their order, scores,
  ranks or ``SearchLimitError`` points — checked differentially across
  cores and semantics on hypothesis-driven instances;
* a fixed-seed workload traced twice produces identical trace *shapes*
  (names, tags, counters, child order — everything but timings) and
  identical registry counter values; durations and ``_ms``-named
  metrics are explicitly exempt.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.errors import SearchLimitError
from repro.obs import metrics as obs_metrics

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=2),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=2, max_value=3),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=30),
)

LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5, max_paths_per_pair=50)
QUERIES = ["kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha", "zzmiss"]


def planted(config):
    database = generate_tenants(config, tenants=2)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2,
          seed=config.seed + 1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 2, seed=config.seed + 2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 2,
          seed=config.seed + 3)
    return database


def outcomes(engine, semantics):
    collected = []
    for query in QUERIES:
        try:
            results = engine.search(query, limits=LIMITS, semantics=semantics)
        except SearchLimitError as error:
            collected.append(("error", str(error)))
        else:
            collected.append(
                [(r.render(), r.score, r.rank) for r in results]
            )
    return collected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=configs,
       core=st.sampled_from(["csr", "fast"]),
       semantics=st.sampled_from(["and", "or"]))
def test_observability_never_changes_answers(config, core, semantics):
    database = planted(config)
    plain = outcomes(
        KeywordSearchEngine(database, core=core), semantics
    )
    obs.set_enabled(True)
    try:
        observed = outcomes(
            KeywordSearchEngine(database, core=core), semantics
        )
    finally:
        obs.set_enabled(False)
        obs.reset()
    assert observed == plain


def _traced_run(database):
    """One full observed workload: per-query shapes + counter values."""
    obs.reset()
    obs.set_enabled(True)
    try:
        engine = KeywordSearchEngine(database, shards=2)
        shapes = []
        for query in QUERIES:
            try:
                engine.search(query, limits=LIMITS)
            except SearchLimitError:
                pass
            shapes.append(engine.last_trace.shape())
        snapshot = obs_metrics.REGISTRY.snapshot()
    finally:
        obs.set_enabled(False)
        obs.reset()
    counters = {
        name: value for name, value in snapshot["counters"].items()
        if not name.endswith("_ms")
    }
    histograms = {
        name: value for name, value in snapshot["histograms"].items()
        if not name.endswith("_ms")
    }
    return shapes, counters, histograms


def test_fixed_seed_workload_is_shape_and_counter_deterministic():
    database = planted(SyntheticConfig(
        departments=2,
        projects_per_department=2,
        employees_per_department=3,
        works_on_per_employee=2,
        seed=17,
    ))
    first = _traced_run(database)
    second = _traced_run(database)
    assert first[0] == second[0], "trace shapes diverged between runs"
    assert first[1] == second[1], "counter values diverged between runs"
    assert first[2] == second[2], "histogram buckets diverged between runs"
    # and the workload actually exercised the instrumented layers
    assert first[1]["executor.runs"] == len(QUERIES)
    assert any(name.startswith("csr.") for name in first[1])
