"""Property-based tests for the relational substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.index import InvertedIndex, tokenize
from repro.relational.io import database_from_dict, database_to_dict
from repro.relational.schema import AttributeDef, DatabaseSchema, Relation

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
words = st.text(alphabet=string.ascii_letters + string.digits, min_size=1,
                max_size=12)
sentences = st.lists(words, min_size=0, max_size=6).map(" ".join)


def fresh_database():
    schema = DatabaseSchema(
        name="prop",
        relations=[
            Relation(
                "DOC",
                [AttributeDef("ID"), AttributeDef("BODY", data_type="text")],
                primary_key=["ID"],
            )
        ],
    )
    return Database(schema)


class TestTokenizer:
    @given(sentences)
    def test_tokens_are_lowercase(self, text):
        assert all(token == token.lower() for token in tokenize(text))

    @given(sentences)
    def test_tokens_appear_in_text(self, text):
        lowered = text.lower()
        for token in tokenize(text):
            assert token in lowered

    @given(words)
    def test_single_word_tokenises_to_itself(self, word):
        tokens = tokenize(word)
        assert word.lower() in tokens

    @given(sentences)
    def test_tokenisation_is_deterministic(self, text):
        assert tokenize(text) == tokenize(text)


class TestIndexConsistency:
    @given(st.lists(st.tuples(identifiers, sentences), max_size=12,
                    unique_by=lambda pair: pair[0]))
    def test_index_matches_scan(self, rows):
        database = fresh_database()
        for identifier, body in rows:
            database.insert("DOC", {"ID": identifier, "BODY": body})
        index = InvertedIndex(database)
        for identifier, body in rows:
            for token in tokenize(body):
                matched = set(index.matching_tuples(token))
                scanned = {
                    record.tid
                    for record in database.tuples("DOC")
                    if token in tokenize(str(record["BODY"]))
                    or token == str(record["ID"]).lower()
                }
                assert matched == scanned

    @given(st.lists(st.tuples(identifiers, sentences), min_size=1, max_size=8,
                    unique_by=lambda pair: pair[0]))
    def test_remove_then_rebuild_equals_fresh(self, rows):
        database = fresh_database()
        records = [
            database.insert("DOC", {"ID": identifier, "BODY": body})
            for identifier, body in rows
        ]
        index = InvertedIndex(database)
        index.remove_tuple(records[0].tid)
        database.delete(records[0].tid)
        index.build()
        fresh = InvertedIndex(database)
        assert index.vocabulary() == fresh.vocabulary()


class TestSerialisationRoundTrip:
    @given(st.lists(st.tuples(identifiers, sentences), max_size=10,
                    unique_by=lambda pair: pair[0]))
    def test_database_round_trips(self, rows):
        database = fresh_database()
        for identifier, body in rows:
            database.insert("DOC", {"ID": identifier, "BODY": body})
        recovered = database_from_dict(database_to_dict(database))
        assert recovered.count() == database.count()
        for record in database.tuples("DOC"):
            clone = recovered.get("DOC", *record.tid.key)
            assert clone is not None
            assert clone.values == record.values
