"""Property-based tests: lazy top-k equals full enumeration everywhere."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    RdbLengthRanker,
    rank_connections,
)
from repro.core.search import SearchLimits, find_connections
from repro.core.topk import top_k_connections
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.core.engine import KeywordSearchEngine

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

rankers = st.sampled_from(
    [RdbLengthRanker(), ErLengthRanker(), ClosenessRanker()]
)


def planted_engine(seed):
    database = generate_company_like(
        SyntheticConfig(
            departments=2,
            projects_per_department=2,
            employees_per_department=4,
            seed=seed,
        )
    )
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 2, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    return KeywordSearchEngine(database)


class TestLazyEqualsFull:
    @relaxed
    @given(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=1, max_value=15),
        rankers,
    )
    def test_equivalence(self, seed, k, ranker):
        engine = planted_engine(seed)
        matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
        limits = SearchLimits(max_rdb_length=4)
        lazy = top_k_connections(
            engine.data_graph, matches, ranker, k, limits
        )
        answers = [
            answer
            for answer in find_connections(
                engine.data_graph, matches, limits, include_single_tuples=False
            )
            if isinstance(answer, Connection)
        ]
        full = rank_connections(answers, ranker)[:k]
        assert [(c.render(), s) for c, s in lazy] == [
            (a.render(), s) for a, s in full
        ]


class TestOrSemanticsInvariants:
    @relaxed
    @given(st.integers(min_value=0, max_value=25))
    def test_or_results_superset_coverage(self, seed):
        """OR results are coverage-sorted and include every AND answer's
        tuple set."""
        engine = planted_engine(seed)
        limits = SearchLimits(max_rdb_length=3)
        and_results = engine.search("kwalpha kwbeta", limits=limits)
        or_results = engine.search(
            "kwalpha kwbeta", semantics="or", limits=limits
        )
        coverages = [-r.score[0] for r in or_results]
        assert coverages == sorted(coverages, reverse=True)
        and_sets = {
            frozenset(r.answer.tuple_ids()) for r in and_results
        }
        or_sets = {frozenset(r.answer.tuple_ids()) for r in or_results}
        assert and_sets <= or_sets
