"""Differential property: the scale layer is invisible to answering.

Hypothesis drives random multi-tenant instances, shard counts, cores,
semantics and live-update interleavings; at every step the sharded
engine — and, at the final state, a snapshot-restored engine and the
process-pool batch path — must be bit-identical (answers, order,
scores, ranks, ``SearchLimitError`` points) to a plain unsharded
engine over the same data.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.errors import SearchLimitError
from repro.live.changes import Delete, Insert, Update

configs = st.builds(
    SyntheticConfig,
    departments=st.integers(min_value=1, max_value=2),
    projects_per_department=st.integers(min_value=1, max_value=2),
    employees_per_department=st.integers(min_value=2, max_value=3),
    works_on_per_employee=st.integers(min_value=1, max_value=2),
    dependents_per_employee=st.just(0.3),
    seed=st.integers(min_value=0, max_value=30),
)

_KINDS = ("insert_dependent", "insert_works", "update_description", "delete")

operations = st.lists(
    st.tuples(st.sampled_from(_KINDS), st.integers(min_value=0, max_value=1 << 20)),
    min_size=0,
    max_size=4,
)

relaxed = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
_TIGHT = SearchLimits(
    max_rdb_length=4, max_tuples=5, max_paths_per_pair=2, max_networks=2
)
_QUERIES = ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha")


def planted_database(config, tenants):
    database = generate_tenants(config, tenants=tenants)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(3, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(3, database.count("EMPLOYEE")), seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION",
          min(3, database.count("PROJECT")), seed=3)
    return database


def build_mutation(database, kind, salt, counter):
    """Deterministically derive one valid mutation from current state."""
    employees = database.tuples("EMPLOYEE")
    if kind == "insert_dependent":
        essn = employees[salt % len(employees)].tid.key[0]
        name = ("kwbeta", "kwalpha", "plainname")[salt % 3]
        return Insert(
            "DEPENDENT",
            {"ID": f"hp{counter}", "ESSN": essn, "DEPENDENT_NAME": name},
        )
    if kind == "insert_works":
        # May link two tenants' components — the shard-merge path.
        projects = database.tuples("PROJECT")
        pairs = len(employees) * len(projects)
        for probe in range(pairs):
            position = (salt + probe) % pairs
            essn = employees[position // len(projects)].tid.key[0]
            pid = projects[position % len(projects)].tid.key[0]
            if database.get("WORKS_FOR", essn, pid) is None:
                return Insert(
                    "WORKS_FOR",
                    {"ESSN": essn, "P_ID": pid, "HOURS": salt % 40 + 1},
                )
        return None
    if kind == "update_description":
        departments = database.tuples("DEPARTMENT")
        department = departments[salt % len(departments)]
        text = ("kwalpha research", "plain words only",
                "kwgamma and kwalpha notes")[salt % 3]
        return Update(department.tid, {"D_DESCRIPTION": text})
    victims = database.tuples("DEPENDENT") + database.tuples("WORKS_FOR")
    if not victims:
        return None
    return Delete(victims[salt % len(victims)].tid)


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


def outcome(engine, query, limits):
    try:
        return ("ok", rendered(engine.search(query, limits=limits)))
    except SearchLimitError as error:
        return ("limit", str(error))


class TestShardedDifferential:
    @relaxed
    @given(
        configs,
        st.integers(min_value=1, max_value=3),  # tenants
        st.integers(min_value=1, max_value=4),  # shards
        st.sampled_from(("csr", "fast", "reference")),
        operations,
    )
    def test_sharded_equals_plain_through_mutations(
        self, config, tenants, shards, core, ops
    ):
        sharded = KeywordSearchEngine(
            planted_database(config, tenants), core=core, shards=shards,
            result_cache_entries=0,
        )
        plain_db = planted_database(config, tenants)
        for counter, (kind, salt) in enumerate([(None, None)] + ops):
            if kind is not None:
                mutation = build_mutation(sharded.database, kind, salt, counter)
                batch = [] if mutation is None else [mutation]
                sharded.apply(batch)
                from repro.live.changes import apply_to_database

                apply_to_database(plain_db, batch)
            plain = KeywordSearchEngine(
                plain_db, core=core, result_cache_entries=0
            )
            for query in _QUERIES:
                for semantics in ("and", "or"):
                    assert rendered(
                        sharded.search(
                            query, limits=_LIMITS, semantics=semantics
                        )
                    ) == rendered(
                        plain.search(query, limits=_LIMITS, semantics=semantics)
                    )

    @relaxed
    @given(
        configs,
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),  # top-k
        operations,
    )
    def test_batch_stream_topk_and_snapshot_round_trip(
        self, config, tenants, shards, k, ops
    ):
        import os
        import tempfile

        sharded = KeywordSearchEngine(
            planted_database(config, tenants), shards=shards,
            result_cache_entries=0,
        )
        for counter, (kind, salt) in enumerate(ops):
            mutation = build_mutation(sharded.database, kind, salt, counter)
            sharded.apply([] if mutation is None else [mutation])
        plain = KeywordSearchEngine(
            planted_database(config, tenants), result_cache_entries=0
        )
        for counter, (kind, salt) in enumerate(ops):
            mutation = build_mutation(plain.database, kind, salt, counter)
            plain.apply([] if mutation is None else [mutation])

        queries = list(_QUERIES)
        expected = [rendered(plain.search(q, limits=_LIMITS)) for q in queries]
        assert [
            rendered(r) for r in sharded.search_batch(queries, limits=_LIMITS)
        ] == expected
        for query in queries:
            assert rendered(
                list(sharded.search_stream(query, limits=_LIMITS))
            ) == rendered(plain.search(query, limits=_LIMITS))
            assert rendered(
                sharded.search(query, limits=_LIMITS, top_k=k)
            ) == rendered(plain.search(query, limits=_LIMITS, top_k=k))

        with tempfile.TemporaryDirectory() as tmp:
            restored = KeywordSearchEngine.open(
                sharded.save(os.path.join(tmp, "s.snap"))
                and os.path.join(tmp, "s.snap"),
                result_cache_entries=0,
            )
            assert [
                rendered(r)
                for r in restored.search_batch(queries, limits=_LIMITS)
            ] == expected

    @relaxed
    @given(
        configs,
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        operations,
    )
    def test_budget_error_points_identical(self, config, tenants, shards, ops):
        sharded = KeywordSearchEngine(
            planted_database(config, tenants), shards=shards,
            result_cache_entries=0,
        )
        plain_db = planted_database(config, tenants)
        from repro.live.changes import apply_to_database

        for counter, (kind, salt) in enumerate(ops):
            mutation = build_mutation(sharded.database, kind, salt, counter)
            batch = [] if mutation is None else [mutation]
            sharded.apply(batch)
            apply_to_database(plain_db, batch)
        plain = KeywordSearchEngine(plain_db, result_cache_entries=0)
        for query in _QUERIES:
            assert outcome(sharded, query, _TIGHT) == outcome(
                plain, query, _TIGHT
            )


class TestParallelDifferential:
    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        configs,
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        operations,
    )
    def test_parallel_equals_serial_after_mutations(
        self, config, tenants, shards, ops
    ):
        engine = KeywordSearchEngine(
            planted_database(config, tenants), shards=shards,
            result_cache_entries=0,
        )
        try:
            for counter, (kind, salt) in enumerate(ops):
                mutation = build_mutation(engine.database, kind, salt, counter)
                engine.apply([] if mutation is None else [mutation])
            queries = list(_QUERIES)
            serial = [
                rendered(r) for r in engine.search_batch(queries, limits=_LIMITS)
            ]
            parallel = [
                rendered(r)
                for r in engine.search_batch(queries, limits=_LIMITS, jobs=2)
            ]
            assert serial == parallel
        finally:
            engine.close_pool()
