"""Snapshot round-trip, integrity and laziness tests."""

import struct

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.company import build_company_database
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.errors import SearchLimitError, SnapshotError
from repro.live.changes import Delete, Insert, Update
from repro.relational.database import TupleId
from repro.relational.statistics import DatabaseStatistics
from repro.scale.snapshot import SNAPSHOT_FORMAT, Snapshot

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    seed=23,
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
QUERIES = ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha", "zznothing")


def planted_database(tenants=3):
    database = generate_tenants(CONFIG, tenants=tenants)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 3, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 3, seed=3)
    return database


def rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


@pytest.fixture()
def saved(tmp_path):
    engine = KeywordSearchEngine(planted_database(), shards=3)
    path = tmp_path / "engine.snap"
    meta = engine.save(path)
    return engine, path, meta


class TestRoundTrip:
    def test_search_results_bit_identical(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        for query in QUERIES:
            for semantics in ("and", "or"):
                assert rendered(
                    restored.search(query, limits=LIMITS, semantics=semantics)
                ) == rendered(
                    engine.search(query, limits=LIMITS, semantics=semantics)
                )

    @pytest.mark.parametrize("core", ["csr", "fast", "reference"])
    def test_identical_on_every_core(self, saved, core):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path, core=core)
        oracle = KeywordSearchEngine(
            planted_database(), core=core, result_cache_entries=0
        )
        for query in QUERIES:
            assert rendered(restored.search(query, limits=LIMITS)) == rendered(
                oracle.search(query, limits=LIMITS)
            )

    def test_stream_batch_and_topk(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        queries = list(QUERIES)
        assert [
            rendered(r)
            for r in restored.search_batch(queries, limits=LIMITS)
        ] == [rendered(engine.search(q, limits=LIMITS)) for q in queries]
        for query in queries:
            assert rendered(
                list(restored.search_stream(query, limits=LIMITS))
            ) == rendered(engine.search(query, limits=LIMITS))
            assert rendered(
                restored.search(query, limits=LIMITS, top_k=2)
            ) == rendered(engine.search(query, limits=LIMITS, top_k=2))

    def test_budget_error_points_identical(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        tight = SearchLimits(
            max_rdb_length=4, max_tuples=5,
            max_paths_per_pair=1, max_networks=1,
        )

        def outcome(target, query):
            try:
                return ("ok", rendered(target.search(query, limits=tight)))
            except SearchLimitError as error:
                return ("limit", str(error))

        for query in QUERIES:
            assert outcome(restored, query) == outcome(engine, query)

    def test_resave_is_byte_identical(self, saved, tmp_path):
        __, path, ___ = saved
        restored = KeywordSearchEngine.open(path)
        second = tmp_path / "second.snap"
        restored.save(second)
        assert path.read_bytes() == second.read_bytes()

    def test_shard_plan_restored(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        assert restored.shards == engine.shards
        assert (
            restored.shard_plan._assignment == engine.shard_plan._assignment
        )

    def test_statistics_restored(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        fresh = DatabaseStatistics(engine.database)
        assert restored.statistics.to_dict() == fresh.to_dict()

    def test_engine_options_pass_through(self, saved):
        __, path, ___ = saved
        restored = KeywordSearchEngine.open(
            path, shards=2, result_cache_entries=0
        )
        assert restored.shards == 2
        assert restored.result_cache.max_entries == 0
        assert restored.shard_plan.shard_count == 2


class TestLaziness:
    def test_pure_csr_path_query_never_builds_the_graph(self, saved):
        __, path, ___ = saved
        restored = KeywordSearchEngine.open(path)
        restored.search("kwalpha kwbeta", limits=LIMITS)
        assert not restored.data_graph.materialized

    def test_fast_core_materialises_on_demand(self, saved):
        __, path, ___ = saved
        restored = KeywordSearchEngine.open(path, core="fast")
        restored.search("kwalpha kwbeta", limits=LIMITS)
        assert restored.data_graph.materialized

    def test_postings_decode_only_touched_tokens(self, saved):
        __, path, ___ = saved
        restored = KeywordSearchEngine.open(path)
        raw_before = len(restored.index._postings._raw)
        restored.search("kwalpha kwbeta", limits=LIMITS)
        raw_after = len(restored.index._postings._raw)
        assert raw_before - raw_after <= 2
        assert raw_after > 0


class TestLiveUpdatesOnRestoredEngine:
    def test_apply_bumps_version_and_persists(self, saved, tmp_path):
        engine, path, meta = saved
        restored = KeywordSearchEngine.open(path)
        assert restored.version == meta["engine_version"]
        restored.apply([
            Insert("DEPENDENT", {"ID": "zz9", "ESSN": "t1e1",
                                 "DEPENDENT_NAME": "kwbeta"})
        ])
        assert restored.version == meta["engine_version"] + 1
        bumped = tmp_path / "bumped.snap"
        restored.save(bumped)
        assert Snapshot(bumped).meta["engine_version"] == restored.version

    def test_mutated_restored_engine_matches_rebuilt_oracle(self, saved):
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path)
        victim = restored.database.tuples("WORKS_FOR")[-1].tid
        department = restored.database.tuples("DEPARTMENT")[0].tid
        mutations = [
            Insert("DEPENDENT", {"ID": "zz8", "ESSN": "t2e1",
                                 "DEPENDENT_NAME": "kwbeta"}),
            Update(department, {"D_DESCRIPTION": "kwalpha fresh words"}),
            Delete(victim),
        ]
        restored.apply(mutations)
        oracle_db = planted_database()
        from repro.live.changes import apply_to_database

        apply_to_database(oracle_db, mutations)
        oracle = KeywordSearchEngine(oracle_db, result_cache_entries=0)
        for query in QUERIES:
            for semantics in ("and", "or"):
                assert rendered(
                    restored.search(query, limits=LIMITS, semantics=semantics)
                ) == rendered(
                    oracle.search(query, limits=LIMITS, semantics=semantics)
                )

    def test_many_appended_nodes_keep_stored_edges_reachable(self, saved):
        """Regression: the lazy edge-payload owner lookup binary-searched
        the *live* interning table, which appends grow past the stored
        CSR offsets — enough inserted rows pushed the search off the end
        of the mmap'd offsets array (IndexError) on the first query that
        walked an uncached stored edge."""
        engine, path, __ = saved
        restored = KeywordSearchEngine.open(path, result_cache_entries=0)
        oracle_db = planted_database()
        from repro.live.changes import apply_to_database

        employees = [t.tid.key[0]
                     for t in restored.database.tuples("EMPLOYEE")]
        for wave in range(3):
            mutations = [
                Insert("DEPENDENT",
                       {"ID": f"grow{wave}-{slot}",
                        "ESSN": employees[(wave + slot) % len(employees)],
                        "DEPENDENT_NAME": ("kwbeta", "kwalpha")[slot % 2]})
                for slot in range(5)
            ]
            restored.apply(mutations)
            apply_to_database(oracle_db, mutations)

            # Every stored payload must stay reachable at every growth
            # step — entries owned by the snapshot's last rows are the
            # ones whose owner search walked off the end (whether a
            # given append count trips it is arithmetic on the midpoint
            # sequence, so probe after each wave).
            frozen = restored.traversal_cache.frozen()
            frozen._edge_data._cache.clear()
            for entry in range(len(frozen._targets)):
                payload = frozen._edge_data[entry]
                assert payload["foreign_key"] is not None
                assert payload["referencing"] is not None

        oracle = KeywordSearchEngine(oracle_db, result_cache_entries=0)
        for query in QUERIES:
            assert rendered(
                restored.search(query, limits=LIMITS)
            ) == rendered(oracle.search(query, limits=LIMITS))


class TestIntegrity:
    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(SnapshotError, match="bad magic"):
            Snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            Snapshot(tmp_path / "absent.snap")

    def test_corrupted_section_detected(self, saved):
        __, path, ___ = saved
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="integrity"):
            KeywordSearchEngine.open(path)

    def test_truncated_file_detected(self, saved):
        __, path, ___ = saved
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 64])
        with pytest.raises(SnapshotError):
            KeywordSearchEngine.open(path)

    def test_version_mismatch_detected(self, saved):
        __, path, ___ = saved
        blob = path.read_bytes()
        magic_length = len(b"REPROSNP\x01")
        (toc_length,) = struct.unpack_from("<I", blob, magic_length)
        start = magic_length + 4
        toc = blob[start : start + toc_length]
        future = toc.replace(
            b'"format":%d' % SNAPSHOT_FORMAT,
            b'"format":%d' % (SNAPSHOT_FORMAT + 1),
            1,
        )
        assert future != toc
        path.write_bytes(blob[:start] + future + blob[start + toc_length :])
        with pytest.raises(SnapshotError, match="format"):
            Snapshot(path)

    def test_company_database_round_trip(self, tmp_path):
        engine = KeywordSearchEngine(build_company_database())
        path = tmp_path / "company.snap"
        engine.save(path)
        restored = KeywordSearchEngine.open(path)
        assert rendered(restored.search("Smith XML")) == rendered(
            engine.search("Smith XML")
        )


class TestMemoryFootprint:
    def test_payload_table_included(self):
        engine = KeywordSearchEngine(planted_database())
        frozen = engine.traversal_cache.frozen()
        footprint = frozen.memory_footprint()
        assert footprint["payload"] > 0
        assert footprint["total"] == (
            footprint["arrays"] + footprint["distances"] + footprint["payload"]
        )
        assert frozen.nbytes() == footprint["total"]
