"""Unit tests for component-based shard partitioning and routing."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    generate_tenants,
    plant,
)
from repro.errors import QueryError
from repro.live.changes import Delete, Insert, Update
from repro.relational.database import TupleId
from repro.scale.shards import CROSS_SHARD, KeywordRouter, ShardPlan

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    seed=11,
)


def tenant_engine(tenants=4, shards=4, **options):
    return KeywordSearchEngine(
        generate_tenants(CONFIG, tenants=tenants), shards=shards, **options
    )


class TestPartition:
    def test_every_live_node_is_assigned(self):
        engine = tenant_engine()
        plan = engine.shard_plan
        frozen = engine.traversal_cache.frozen()
        for node in range(frozen.capacity):
            assert plan._assignment[node] >= 0

    def test_components_are_never_split(self):
        engine = tenant_engine(tenants=3, shards=2)
        plan = engine.shard_plan
        frozen = engine.traversal_cache.frozen()
        components = frozen.components()
        shard_of_component = {}
        for node in range(frozen.capacity):
            shard = plan._assignment[node]
            previous = shard_of_component.setdefault(components[node], shard)
            assert previous == shard

    def test_balanced_across_equal_tenants(self):
        engine = tenant_engine(tenants=4, shards=2)
        sizes = engine.shard_plan.sizes()
        assert len(sizes) == 2
        assert sum(sizes) == engine.traversal_cache.frozen().live_count()
        # Four near-equal components over two shards: close to even.
        assert max(sizes) <= 2 * min(sizes)

    def test_deterministic(self):
        first = tenant_engine().shard_plan
        second = tenant_engine().shard_plan
        assert first._assignment == second._assignment

    def test_shard_count_validated(self):
        engine = tenant_engine(shards=None)
        with pytest.raises(QueryError):
            ShardPlan(engine.traversal_cache, 0)

    def test_more_shards_than_components(self):
        engine = tenant_engine(tenants=2, shards=5)
        sizes = engine.shard_plan.sizes()
        assert sum(1 for size in sizes if size) == 2  # only 2 components exist


class TestShardOf:
    def test_same_shard_group(self):
        engine = tenant_engine()
        plan = engine.shard_plan
        employees = [r.tid for r in engine.database.tuples("EMPLOYEE")]
        same_tenant = [t for t in employees if t.key[0].startswith("t1e")]
        shard = plan.shard_of_all(same_tenant[:3])
        assert isinstance(shard, int)

    def test_cross_shard_group(self):
        engine = tenant_engine(tenants=4, shards=4)
        plan = engine.shard_plan
        a = engine.database.get("EMPLOYEE", "t1e1").tid
        b = engine.database.get("EMPLOYEE", "t2e1").tid
        if plan.shard_of(a) != plan.shard_of(b):
            assert plan.shard_of_all([a, b]) is CROSS_SHARD

    def test_unknown_tuple_yields_none(self):
        engine = tenant_engine()
        plan = engine.shard_plan
        ghost = TupleId("EMPLOYEE", ("nope",))
        assert plan.shard_of(ghost) is None
        known = engine.database.get("EMPLOYEE", "t1e1").tid
        assert plan.shard_of_all([known, ghost]) is None


class TestShardGraphs:
    def test_local_graphs_partition_the_nodes(self):
        engine = tenant_engine(tenants=3, shards=3)
        plan = engine.shard_plan
        total = sum(
            plan.graph_for(shard).capacity for shard in range(plan.shard_count)
        )
        assert total == engine.traversal_cache.frozen().live_count()

    def test_local_interning_round_trips(self):
        engine = tenant_engine()
        plan = engine.shard_plan
        for shard in range(plan.shard_count):
            graph = plan.graph_for(shard)
            for node in range(graph.capacity):
                tid = graph.tid_of(node)
                assert graph.node_of(tid) == node
                assert plan.shard_of(tid) == shard

    def test_local_edges_stay_inside_the_shard(self):
        engine = tenant_engine()
        plan = engine.shard_plan
        for shard in range(plan.shard_count):
            graph = plan.graph_for(shard)
            for target in graph._targets:
                assert 0 <= target < graph.capacity

    def test_shard_kernels_match_global(self):
        from repro.graph.csr import csr_enumerate_simple_paths

        engine = tenant_engine(tenants=2, shards=2)
        plan = engine.shard_plan
        employees = [
            r.tid for r in engine.database.tuples("EMPLOYEE")
            if r.tid.key[0].startswith("t1e")
        ]
        source, target = employees[0], employees[2]
        shard = plan.shard_of(source)
        assert plan.shard_of(target) == shard
        global_paths = list(
            csr_enumerate_simple_paths(
                engine.data_graph, source, target, 4,
                cache=engine.traversal_cache,
            )
        )
        local_paths = list(
            csr_enumerate_simple_paths(
                engine.data_graph, source, target, 4,
                cache=plan.cache_for(shard),
            )
        )
        render = lambda paths: [
            [(str(s.source), str(s.target), s.edge_key) for s in path]
            for path in paths
        ]
        assert render(global_paths) == render(local_paths)
        assert len(global_paths) > 0


class TestRouter:
    def test_routes_from_postings(self):
        database = generate_tenants(CONFIG, tenants=3)
        plant(database, "needle", "EMPLOYEE", "L_NAME", 3, seed=5)
        engine = KeywordSearchEngine(database, shards=3)
        router = engine.router()
        shards = router.shards_for("needle")
        expected = {
            engine.shard_plan.shard_of(tid)
            for tid in engine.index.matching_tuples("needle")
        }
        assert shards == frozenset(expected)

    def test_and_intersects_or_unions(self):
        database = generate_tenants(CONFIG, tenants=3)
        plant(database, "kwone", "EMPLOYEE", "L_NAME", 2, seed=5)
        plant(database, "kwtwo", "PROJECT", "P_DESCRIPTION", 2, seed=6)
        engine = KeywordSearchEngine(database, shards=3)
        router = engine.router()
        one, two = router.shards_for("kwone"), router.shards_for("kwtwo")
        assert router.route(("kwone", "kwtwo"), "and") == one & two
        assert router.route(("kwone", "kwtwo"), "or") == one | two

    def test_unknown_keyword_routes_nowhere(self):
        engine = tenant_engine()
        assert engine.router().route(("zzznope",), "and") == frozenset()

    def test_semantics_validated(self):
        engine = tenant_engine()
        with pytest.raises(QueryError):
            engine.router().route(("a",), "xor")


class TestDifferential:
    """Sharded execution must be invisible in answers."""

    QUERIES = ("kwalpha kwbeta", "kwalpha kwbeta kwgamma", "kwalpha")

    @staticmethod
    def planted(tenants=3):
        database = generate_tenants(CONFIG, tenants=tenants)
        plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 4, seed=1)
        plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 4, seed=2)
        plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 4, seed=3)
        return database

    @staticmethod
    def rendered(results):
        return [(r.render(), r.score, r.rank) for r in results]

    @pytest.mark.parametrize("core", ["csr", "fast", "reference"])
    def test_identical_across_cores_and_semantics(self, core):
        database = self.planted()
        plain = KeywordSearchEngine(database, core=core, result_cache_entries=0)
        sharded = KeywordSearchEngine(
            database, core=core, shards=3, result_cache_entries=0
        )
        limits = SearchLimits(max_rdb_length=4, max_tuples=5)
        for query in self.QUERIES:
            for semantics in ("and", "or"):
                assert self.rendered(
                    sharded.search(query, limits=limits, semantics=semantics)
                ) == self.rendered(
                    plain.search(query, limits=limits, semantics=semantics)
                )

    def test_identical_with_topk_and_stream(self):
        database = self.planted()
        plain = KeywordSearchEngine(database, result_cache_entries=0)
        sharded = KeywordSearchEngine(database, shards=3, result_cache_entries=0)
        limits = SearchLimits(max_rdb_length=4, max_tuples=5)
        for query in self.QUERIES:
            assert self.rendered(
                sharded.search(query, limits=limits, top_k=3)
            ) == self.rendered(plain.search(query, limits=limits, top_k=3))
            assert self.rendered(
                list(sharded.search_stream(query, limits=limits))
            ) == self.rendered(plain.search(query, limits=limits))

    def test_sharding_actually_skips_units(self):
        database = self.planted()
        sharded = KeywordSearchEngine(database, shards=3, result_cache_entries=0)
        sharded.search("kwalpha kwbeta", limits=SearchLimits(max_rdb_length=4))
        assert sharded.last_stats.shard_skips > 0


class TestLiveMaintenance:
    def test_insert_routes_to_existing_component_shard(self):
        engine = tenant_engine(tenants=3, shards=3)
        plan = engine.shard_plan
        host = engine.database.get("EMPLOYEE", "t2e1")
        host_shard = plan.shard_of(host.tid)
        engine.apply([
            Insert("DEPENDENT", {"ID": "zz1", "ESSN": "t2e1",
                                 "DEPENDENT_NAME": "Newborn"})
        ])
        assert plan.shard_of(TupleId("DEPENDENT", ("zz1",))) == host_shard

    def test_component_merge_unifies_shards(self):
        engine = tenant_engine(tenants=2, shards=2)
        plan = engine.shard_plan
        a = engine.database.get("EMPLOYEE", "t1e1").tid
        b = engine.database.get("PROJECT", "t2p1").tid
        first, second = plan.shard_of(a), plan.shard_of(b)
        assert first != second
        engine.apply([
            Insert("WORKS_FOR", {"ESSN": "t1e1", "P_ID": "t2p1", "HOURS": 5})
        ])
        merged = plan.shard_of(a)
        assert merged == plan.shard_of(b) == min(first, second)

    def test_assignment_stays_component_aligned_after_mutations(self):
        engine = tenant_engine(tenants=3, shards=2)
        victim = engine.database.tuples("WORKS_FOR")[-1].tid
        engine.apply([
            Insert("DEPENDENT", {"ID": "zz2", "ESSN": "t1e2",
                                 "DEPENDENT_NAME": "kid"}),
            Update(TupleId("DEPARTMENT", ("t2d1",)),
                   {"D_DESCRIPTION": "changed words"}),
            Delete(victim),
        ])
        plan = engine.shard_plan
        frozen = engine.traversal_cache.frozen()
        components = frozen.components()
        shard_of_component = {}
        for node in range(frozen.capacity):
            if not frozen._alive[node]:
                continue
            shard = plan._assignment[node]
            assert shard >= 0
            previous = shard_of_component.setdefault(components[node], shard)
            assert previous == shard

    def test_delete_never_leaks_tombstones_into_shard_graphs(self):
        """Regression: a removed tuple's stale shard assignment must not
        surface in the shard's next extraction (tid_of on a tombstone)."""
        database = TestDifferential.planted()
        sharded = KeywordSearchEngine(database, shards=3, result_cache_entries=0)
        plain = KeywordSearchEngine(
            TestDifferential.planted(), result_cache_entries=0
        )
        sharded.search("kwalpha kwbeta", limits=SearchLimits(max_rdb_length=4))
        victims = database.tuples("DEPENDENT") or database.tuples("WORKS_FOR")
        mutation = [Delete(victims[0].tid)]
        sharded.apply(mutation)
        plain.apply(mutation)
        for query in TestDifferential.QUERIES:
            assert TestDifferential.rendered(
                sharded.search(query, limits=SearchLimits(max_rdb_length=4))
            ) == TestDifferential.rendered(
                plain.search(query, limits=SearchLimits(max_rdb_length=4))
            )
        plan = sharded.shard_plan
        frozen = sharded.traversal_cache.frozen()
        for shard in range(plan.shard_count):
            graph = plan.graph_for(shard)
            assert all(graph.tid_of(n) is not None for n in range(graph.capacity))
        for node in range(frozen.capacity):
            if not frozen._alive[node]:
                assert plan._assignment[node] == -1

    def test_compaction_triggers_full_rebuild(self):
        engine = tenant_engine(tenants=3, shards=3)
        plan = engine.shard_plan
        frozen = engine.traversal_cache.frozen()
        frozen.compaction_threshold = 0.0
        frozen.min_compaction_nodes = 1
        before = plan.version
        engine.apply([
            Insert("DEPENDENT", {"ID": "zz3", "ESSN": "t1e1",
                                 "DEPENDENT_NAME": "kid"})
        ])
        assert engine.traversal_cache.frozen().compactions >= 1
        assert plan.version > before
        # still component-aligned and queryable
        assert plan.shard_of(TupleId("DEPENDENT", ("zz3",))) is not None
