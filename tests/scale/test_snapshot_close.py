"""Release lifecycle for snapshot-backed engines (the RES01 fix).

PR 6's linter flagged that ``Snapshot``'s mmap had no paired close
anywhere.  These tests pin the fix: ``Snapshot.close()`` releases every
exported view before unmapping, closed snapshots refuse further section
access, and ``KeywordSearchEngine.close()`` tears down both the worker
pool and the snapshot.  Both objects double as context managers.
"""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.company import build_company_database
from repro.errors import SnapshotError
from repro.scale.snapshot import Snapshot


@pytest.fixture()
def snapshot_path(tmp_path):
    engine = KeywordSearchEngine(build_company_database())
    path = tmp_path / "engine.snap"
    engine.save(path)
    return path


def test_closed_snapshot_refuses_section_access(snapshot_path):
    snapshot = Snapshot(snapshot_path)
    assert snapshot.section("meta") is not None
    snapshot.close()
    assert snapshot.closed
    with pytest.raises(SnapshotError):
        snapshot.section("meta")


def test_snapshot_close_is_idempotent(snapshot_path):
    snapshot = Snapshot(snapshot_path)
    snapshot.close()
    snapshot.close()
    assert snapshot.closed


def test_snapshot_close_releases_exported_views(snapshot_path):
    # Without tracking exported views, mmap.close() raises BufferError
    # while any memoryview handed to a caller is still alive.
    snapshot = Snapshot(snapshot_path)
    view = snapshot.section("meta")
    snapshot.close()
    with pytest.raises(ValueError):
        view[0]


def test_transient_reads_do_not_accumulate_exported_views(snapshot_path):
    # json() and verify() take throwaway views; only views handed to
    # callers via section()/int_array() may stay retained until close().
    snapshot = Snapshot(snapshot_path)
    resting = len(snapshot._exported)
    for __ in range(10):
        snapshot.verify()
        snapshot.json("meta")
    assert len(snapshot._exported) == resting
    snapshot.close()


def test_snapshot_context_manager(snapshot_path):
    with Snapshot(snapshot_path) as snapshot:
        assert not snapshot.closed
    assert snapshot.closed


def test_closed_engine_refuses_uncached_queries(snapshot_path):
    engine = KeywordSearchEngine.open(snapshot_path)
    engine.close()
    assert engine._snapshot.closed
    with pytest.raises(SnapshotError):
        engine.search("Smith XML")


def test_engine_close_after_queries(snapshot_path):
    engine = KeywordSearchEngine.open(snapshot_path)
    answers = engine.search("Smith XML")
    assert answers
    engine.close()
    engine.close()  # idempotent
    assert engine._snapshot.closed


def test_engine_context_manager(snapshot_path):
    with KeywordSearchEngine.open(snapshot_path) as engine:
        assert engine.search("Smith XML")
    assert engine._snapshot.closed


def test_close_on_plain_engine_is_a_no_op():
    engine = KeywordSearchEngine(build_company_database())
    engine.close()  # no snapshot, no pool: nothing to release
    assert engine.search("Smith XML")
