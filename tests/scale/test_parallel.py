"""Differential tests for the process-pool batch executor."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.ranking import RdbLengthRanker
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.errors import SearchLimitError
from repro.live.changes import Insert

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    seed=31,
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
QUERIES = [
    "kwalpha kwbeta",
    "kwalpha kwbeta kwgamma",
    "kwalpha",
    "zznothing",
    "kwbeta kwgamma",
]


def planted_database(tenants=3):
    database = generate_tenants(CONFIG, tenants=tenants)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 3, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 3, seed=3)
    return database


def rendered(batches):
    return [[(r.render(), r.score, r.rank) for r in results]
            for results in batches]


@pytest.fixture()
def engine():
    engine = KeywordSearchEngine(planted_database(), shards=3)
    yield engine
    engine.close_pool()


class TestParallelDifferential:
    def test_batch_identical_to_serial(self, engine):
        serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
        parallel = rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
        assert serial == parallel

    def test_or_semantics_and_topk(self, engine):
        for top_k in (None, 2):
            serial = rendered(
                engine.search_batch(
                    QUERIES, limits=LIMITS, semantics="or", top_k=top_k
                )
            )
            parallel = rendered(
                engine.search_batch(
                    QUERIES, limits=LIMITS, semantics="or", top_k=top_k, jobs=2
                )
            )
            assert serial == parallel

    def test_non_default_ranker_round_trips(self, engine):
        ranker = RdbLengthRanker()
        serial = rendered(
            engine.search_batch(QUERIES, ranker=ranker, limits=LIMITS)
        )
        parallel = rendered(
            engine.search_batch(QUERIES, ranker=ranker, limits=LIMITS, jobs=2)
        )
        assert serial == parallel

    def test_duplicate_queries_collapse(self, engine):
        queries = [QUERIES[0], QUERIES[1], QUERIES[0], QUERIES[0]]
        parallel = engine.search_batch(queries, limits=LIMITS, jobs=2)
        assert rendered([parallel[0]]) == rendered([parallel[2]])
        assert parallel[0] is parallel[3]

    def test_more_jobs_than_queries(self, engine):
        serial = rendered(engine.search_batch(QUERIES[:2], limits=LIMITS))
        parallel = rendered(
            engine.search_batch(QUERIES[:2], limits=LIMITS, jobs=4)
        )
        assert serial == parallel

    def test_jobs_one_stays_serial(self, engine):
        engine.search_batch(QUERIES[:2], limits=LIMITS, jobs=1)
        assert engine._searcher is None  # no pool was ever started

    def test_unsharded_parallel_works_too(self):
        engine = KeywordSearchEngine(planted_database(), shards=None)
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            parallel = rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            assert serial == parallel
        finally:
            engine.close_pool()

    def test_worker_answers_revive_against_coordinator_graph(self, engine):
        results = engine.search_batch(QUERIES[:2], limits=LIMITS, jobs=2)[0]
        connection = next(
            r.answer for r in results if hasattr(r.answer, "steps")
        )
        explained = engine.explain(
            next(r for r in results if r.answer is connection)
        )
        assert "verdict" in explained  # metrics computable after revival


class TestParallelStats:
    def test_stats_merge_across_workers(self, engine):
        engine.search_batch(QUERIES, limits=LIMITS)
        serial_stats = engine.last_stats
        engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
        parallel_stats = engine.last_stats
        assert parallel_stats.candidates == serial_stats.candidates
        assert parallel_stats.emitted == serial_stats.emitted


class TestParallelErrors:
    def test_budget_error_matches_serial(self, engine):
        tight = SearchLimits(
            max_rdb_length=4, max_tuples=5,
            max_paths_per_pair=1, max_networks=1,
        )

        def outcome(jobs):
            try:
                return (
                    "ok",
                    rendered(
                        engine.search_batch(QUERIES, limits=tight, jobs=jobs)
                    ),
                )
            except SearchLimitError as error:
                return ("limit", str(error), error.context)

        assert outcome(None) == outcome(2)

    def test_earlier_queries_survive_a_failing_one(self, engine):
        tight = SearchLimits(
            max_rdb_length=4, max_tuples=5,
            max_paths_per_pair=1, max_networks=1,
        )
        try:
            engine.search_batch(QUERIES, limits=tight, jobs=2)
        except SearchLimitError:
            pass
        else:  # the workload must actually trip the budget for this test
            pytest.skip("workload did not exceed the tight budget")
        # the failing batch left the engine fully usable
        serial = rendered(engine.search_batch(QUERIES[:1], limits=LIMITS))
        parallel = rendered(
            engine.search_batch(QUERIES[:1], limits=LIMITS, jobs=2)
        )
        assert serial == parallel


class TestSharedMemoryTransport:
    def test_answers_travel_through_the_arena(self, engine):
        serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
        fresh = KeywordSearchEngine(planted_database(), shards=3)
        try:
            parallel = rendered(
                fresh.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            searcher = fresh._searcher
            assert searcher is not None
            if searcher._arena is None:  # pragma: no cover - no shm host
                pytest.skip("platform offers no shared memory")
            assert searcher.shm_batches > 0
            assert searcher.pipe_batches == 0
        finally:
            fresh.close_pool()
        assert serial == parallel

    def test_oversize_batches_fall_back_to_the_pipe(self, engine, monkeypatch):
        from repro.scale.parallel import ParallelSearcher

        # A region too small for any record forces every batch down the
        # pipe path; answers must stay bit-identical either way.
        monkeypatch.setattr(ParallelSearcher, "region_bytes", 16)
        serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
        fresh = KeywordSearchEngine(planted_database(), shards=3)
        try:
            parallel = rendered(
                fresh.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            searcher = fresh._searcher
            assert searcher is not None
            assert searcher.shm_batches == 0
            assert searcher.pipe_batches > 0
        finally:
            fresh.close_pool()
        assert serial == parallel

    def test_close_releases_the_arena(self):
        engine = KeywordSearchEngine(planted_database(), shards=3)
        engine.search_batch(QUERIES[:2], limits=LIMITS, jobs=2)
        searcher = engine._searcher
        engine.close_pool()
        assert searcher._arena is None


class TestPoolLifecycle:
    def test_apply_refreshes_the_snapshot_and_pool(self, engine):
        before = rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
        first_searcher = engine._searcher
        engine.apply([
            Insert("DEPENDENT", {"ID": "pp1", "ESSN": "t1e1",
                                 "DEPENDENT_NAME": "kwbeta"})
        ])
        after_parallel = rendered(
            engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
        )
        assert engine._searcher is not first_searcher
        after_serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
        assert after_parallel == after_serial
        assert after_parallel != before  # the insert is visible

    def test_close_pool_is_idempotent(self, engine):
        engine.search_batch(QUERIES[:1], limits=LIMITS, jobs=2)
        engine.close_pool()
        engine.close_pool()
        assert engine._searcher is None

    def test_rebuild_closes_the_pool(self, engine):
        engine.search_batch(QUERIES[:1], limits=LIMITS, jobs=2)
        engine.rebuild()
        assert engine._searcher is None


class TestObservability:
    """Worker traces and metric deltas merge commutatively, both
    transports, without touching answers."""

    def _observed_batch(self, jobs=2, region_bytes=None, monkeypatch=None):
        from repro import obs
        from repro.obs import metrics as obs_metrics

        if region_bytes is not None:
            from repro.scale.parallel import ParallelSearcher

            monkeypatch.setattr(ParallelSearcher, "region_bytes",
                                region_bytes)
        engine = KeywordSearchEngine(planted_database(), shards=3)
        obs.reset()
        obs.set_enabled(True)
        try:
            batches = engine.search_batch(QUERIES, limits=LIMITS, jobs=jobs)
            trace = engine.last_trace
            counters = dict(obs_metrics.REGISTRY.snapshot()["counters"])
        finally:
            obs.set_enabled(False)
            obs.reset()
            engine.close_pool()
        return rendered(batches), trace, counters

    def test_worker_traces_merge_into_batch_trace(self, engine):
        serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
        parallel, trace, counters = self._observed_batch()
        assert parallel == serial
        assert trace.root.name == "query.batch"
        assert trace.root.tags["jobs"] == 2
        workers = [
            span for span in trace.walk() if span.name == "worker.batch"
        ]
        assert len(workers) == 2
        # input-position order, whatever order the chunks completed in
        assert [w.tags["worker"] for w in workers] == [0, 1]
        # Every distinct query ran in exactly one worker; cost routing
        # may cut the batch non-contiguously, but each worker still
        # answers its chunk in input order.
        distinct = list(dict.fromkeys(QUERIES))
        per_worker = [
            [
                span.tags["query"] for span in w.children
                if span.name == "query"
            ]
            for w in workers
        ]
        assert sorted(q for chunk in per_worker for q in chunk) == sorted(
            distinct
        )
        order = {query: position for position, query in enumerate(distinct)}
        for chunk in per_worker:
            assert [order[q] for q in chunk] == sorted(order[q] for q in chunk)
        assert all(w.tags["transport"] in ("shm", "pipe") for w in workers)

    def test_worker_metrics_merge_into_registry(self):
        __, __, counters = self._observed_batch()
        # every distinct query ran in some worker; their deltas merged
        assert counters["executor.runs"] == len(dict.fromkeys(QUERIES))
        assert counters["result_cache.stores"] >= 1
        transport = [name for name in counters if name.startswith("pool.")]
        assert transport in (["pool.shm_batches"], ["pool.pipe_batches"])

    def test_pipe_transport_carries_the_same_observability(self, monkeypatch):
        parallel, trace, counters = self._observed_batch(
            region_bytes=16, monkeypatch=monkeypatch
        )
        workers = [
            span for span in trace.walk() if span.name == "worker.batch"
        ]
        assert workers
        assert all(w.tags["transport"] == "pipe" for w in workers)
        assert counters["pool.pipe_batches"] == 2

    def test_merged_observability_is_deterministic(self):
        first = self._observed_batch()
        second = self._observed_batch()
        assert first[0] == second[0]
        assert first[1].shape() == second[1].shape()
        drop = ("_ms",)
        assert {k: v for k, v in first[2].items()
                if not k.endswith(drop)} == \
               {k: v for k, v in second[2].items() if not k.endswith(drop)}

    def test_disabled_batch_ships_no_observability_records(self, engine):
        engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
        searcher = engine._searcher
        assert searcher is not None
        assert searcher.last_obs == []
        assert engine.last_trace is None


class TestSelfHealing:
    """Dead workers respawn; a doubly-failed chunk degrades to
    in-process execution — the batch completes bit-identically."""

    def _fresh_engine(self):
        # No coordinator answer cache: every batch must reach the pool.
        return KeywordSearchEngine(
            planted_database(), shards=3, result_cache_entries=0
        )

    def test_killed_worker_respawns_between_batches(self):
        import os
        import signal

        engine = self._fresh_engine()
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
            searcher = engine._searcher
            victim, __ = searcher._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()

            healed = rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            assert healed == serial
            assert searcher.respawns == 1
            assert searcher.inline_chunks == 0
            # the replacement keeps serving
            assert rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            ) == serial
            assert searcher.respawns == 1
        finally:
            engine.close_pool()

    def test_worker_killed_mid_chunk_retries_once(self, tmp_path):
        """A fault-armed worker SIGKILLs itself mid-chunk; the respawned
        worker (same snapshot generation) re-runs the chunk and the
        batch result is bit-identical to serial."""
        import os

        from repro.durable import fault

        sentinel = str(tmp_path / "pool.once")
        fault.configure(f"pool.chunk:kill:once={sentinel}")
        engine = self._fresh_engine()
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            parallel = rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            searcher = engine._searcher
            assert parallel == serial
            assert searcher.respawns == 1
            assert searcher.inline_chunks == 0
            assert os.path.exists(sentinel)  # the fault really fired
        finally:
            fault.reset()
            engine.close_pool()

    def test_failed_respawn_degrades_to_inline_execution(self):
        import os
        import signal

        engine = self._fresh_engine()
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
            searcher = engine._searcher
            victim, __ = searcher._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()

            def no_spawn(index, arena):
                raise OSError("no processes left")

            searcher._spawn_worker = no_spawn
            degraded = rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            )
            assert degraded == serial
            assert searcher.respawns == 1
            assert searcher.inline_chunks == 1
        finally:
            engine.close_pool()

    def test_respawn_metrics(self):
        import os
        import signal

        from repro.obs import metrics as obs_metrics

        engine = self._fresh_engine()
        try:
            engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            searcher = engine._searcher
            victim, __ = searcher._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            obs_metrics.set_enabled(True)
            before = obs_metrics.REGISTRY.snapshot()
            engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            delta = obs_metrics.diff_snapshots(
                before, obs_metrics.REGISTRY.snapshot()
            )
            assert delta["counters"].get("pool.respawns") == 1
            assert "pool.inline_chunks" not in delta["counters"]
        finally:
            engine.close_pool()


class TestHotReopen:
    def test_reopen_swaps_every_worker_without_rebuild(self, tmp_path):
        import os

        engine = KeywordSearchEngine(
            planted_database(), shards=3, result_cache_entries=0
        )
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
            searcher = engine._searcher
            workers_before = [p.pid for p, __ in searcher._workers]

            # Re-home the pool onto an equal snapshot at a new path.
            path = str(tmp_path / "rehome.snap")
            engine.save(path)
            assert searcher.reopen(path) == 2
            assert [p.pid for p, __ in searcher._workers] == workers_before
            assert rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            ) == serial
        finally:
            engine.close_pool()

    def test_reopen_respawns_a_dead_worker(self, tmp_path):
        import os
        import signal

        engine = KeywordSearchEngine(
            planted_database(), shards=3, result_cache_entries=0
        )
        try:
            serial = rendered(engine.search_batch(QUERIES, limits=LIMITS))
            rendered(engine.search_batch(QUERIES, limits=LIMITS, jobs=2))
            searcher = engine._searcher
            victim, __ = searcher._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()

            path = str(tmp_path / "rehome.snap")
            engine.save(path)
            assert searcher.reopen(path) == 2  # one swapped, one respawned
            assert searcher.respawns == 1
            assert rendered(
                engine.search_batch(QUERIES, limits=LIMITS, jobs=2)
            ) == serial
        finally:
            engine.close_pool()
