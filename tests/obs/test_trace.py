"""Unit tests for the query-span layer (repro.obs.trace)."""

import pickle

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_on():
    trace.set_enabled(True)
    trace.reset()
    yield
    trace.set_enabled(False)
    trace.reset()


class TestSpan:
    def test_child_nesting_and_walk_order(self):
        root = trace.Span("root")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [node.name for node in root.walk()] == ["root", "a", "a1", "b"]

    def test_counters_accumulate(self):
        span = trace.Span("s")
        span.add(produced=3)
        span.add(produced=2, skipped=1)
        assert span.counters == {"produced": 5, "skipped": 1}

    def test_total_sums_descendants(self):
        root = trace.Span("root")
        root.add(n=1)
        root.child("a").add(n=2)
        root.children[0].child("b").add(n=4)
        assert root.total("n") == 7

    def test_shape_excludes_timings(self):
        one, two = trace.Span("s", {"k": 1}), trace.Span("s", {"k": 1})
        one.add(n=2)
        two.add(n=2)
        one.duration, two.duration = 1.0, 99.0
        one.start, two.start = 5.0, 7.0
        assert one.shape() == two.shape()

    def test_shape_sees_structure(self):
        one, two = trace.Span("s"), trace.Span("s")
        one.child("a")
        two.child("b")
        assert one.shape() != two.shape()

    def test_spans_pickle_round_trip(self):
        root = trace.Span("root", {"query": "x"})
        root.child("child").add(n=3)
        revived = pickle.loads(pickle.dumps(root))
        assert revived.shape() == root.shape()


class TestQueryTrace:
    def test_span_context_nests_on_stack(self):
        qtrace = trace.begin_trace("query")
        with trace.span("outer"):
            with trace.span("inner", op=0) as inner:
                inner.add(produced=2)
        trace.end_trace(qtrace)
        outer = next(qtrace.find("outer"))
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].tags == {"op": 0}
        assert qtrace.root.total("produced") == 2

    def test_innermost_active_trace_collects(self):
        first = trace.begin_trace("first")
        second = trace.begin_trace("second")
        with trace.span("work"):
            pass
        trace.end_trace(second)
        trace.end_trace(first)
        assert next(second.find("work"), None) is not None
        assert next(first.find("work"), None) is None

    def test_disabled_span_is_shared_null(self):
        trace.set_enabled(False)
        context = trace.span("anything")
        assert context is trace.span("other")
        with context as live:
            assert live is None

    def test_ambient_trace_collects_outside_queries(self):
        with trace.span("loose"):
            pass
        assert next(trace.ambient_trace().find("loose"), None) is not None

    def test_ambient_child_cap_counts_drops(self):
        ambient = trace.ambient_trace()
        for index in range(trace.AMBIENT_CHILD_CAP + 5):
            with trace.span("s", i=index):
                pass
        assert len(ambient.root.children) == trace.AMBIENT_CHILD_CAP
        assert ambient.root.counters["dropped_spans"] == 5

    def test_adopt_attaches_external_tree(self):
        qtrace = trace.begin_trace("query")
        foreign = trace.Span("worker.batch")
        foreign.child("query")
        qtrace.adopt(foreign)
        trace.end_trace(qtrace)
        assert [c.name for c in qtrace.root.children] == ["worker.batch"]

    def test_jsonl_paths_qualify_depth_first(self):
        qtrace = trace.begin_trace("query")
        with trace.span("a"):
            with trace.span("b"):
                pass
        trace.end_trace(qtrace)
        lines = qtrace.to_jsonl().strip().splitlines()
        import json

        paths = [json.loads(line)["path"] for line in lines]
        assert paths == ["query", "query/a", "query/a/b"]

    def test_save_jsonl_writes_file(self, tmp_path):
        qtrace = trace.begin_trace("query")
        with trace.span("a"):
            pass
        trace.end_trace(qtrace)
        target = tmp_path / "trace.jsonl"
        qtrace.save_jsonl(target)
        assert target.read_text().count("\n") == 2

    def test_reset_clears_active_and_ambient(self):
        trace.begin_trace("left-open")
        with trace.span("x"):
            pass
        trace.reset()
        assert trace.current_trace() is None
        assert trace.ambient_trace().span_count() == 1
