"""EXPLAIN ANALYZE tests, including the shards+snapshot+pool acceptance
scenario: a two-keyword AND query answered from a reopened snapshot with
a sharded graph and a worker pool, rendered as a per-plan-node table."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    seed=31,
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)


@pytest.fixture(scope="module")
def planted():
    database = generate_tenants(CONFIG, tenants=3)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 3, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    return database


class TestExplainAnalyze:
    def test_rows_cover_every_plan_stage(self, engine):
        report = engine.explain_analyze("Smith XML")
        nodes = [row.node for row in report.rows]
        assert nodes[0] == "match"
        assert "paths" in nodes
        assert nodes[-2:] == ["rank/cut", "total"]
        total = report.rows[-1]
        assert total.time_ms is not None and total.time_ms >= 0
        assert total.counters["candidates"] == report.stats.candidates
        assert total.counters["emitted"] == len(report.results)

    def test_render_is_a_table_with_header(self, engine):
        text = engine.explain_analyze("Smith XML", top_k=3).render()
        lines = text.splitlines()
        assert lines[0].startswith("EXPLAIN ANALYZE  query='Smith XML'")
        assert "core=" in lines[0] and "mode=" in lines[0]
        assert lines[1].split()[:2] == ["node", "detail"]
        assert set(lines[2]) == {"-"}
        assert any(line.startswith("total") for line in lines)
        assert "top-3" in text

    def test_answers_match_plain_search_and_fill_cache(self, engine):
        plain = [
            (r.render(), r.score, r.rank) for r in engine.search("Smith XML")
        ]
        fresh = KeywordSearchEngine(engine.database)
        report = fresh.explain_analyze("Smith XML")
        analysed = [
            (r.render(), r.score, r.rank) for r in report.results
        ]
        assert analysed == plain
        before = fresh.result_cache.stats.hits
        fresh.search("Smith XML")
        assert fresh.result_cache.stats.hits == before + 1

    def test_tracing_flag_is_restored(self, engine):
        assert not obs_trace.ENABLED
        engine.explain_analyze("Smith XML")
        assert not obs_trace.ENABLED
        assert engine.last_trace is not None

    def test_to_dict_round_trips_rows(self, engine):
        doc = engine.explain_analyze("Smith XML").to_dict()
        assert doc["query"] == "Smith XML"
        assert doc["stats"]["emitted"] == doc["rows"][-1]["counters"]["emitted"]

    def test_acceptance_shards_snapshot_pool(self, planted, tmp_path):
        """The ISSUE's acceptance path: 2-keyword AND query, sharded
        engine reopened from a snapshot, analysed with a worker pool."""
        path = tmp_path / "engine.snap"
        KeywordSearchEngine(planted, shards=3).save(path)
        engine = KeywordSearchEngine.open(path)
        try:
            report = engine.explain_analyze(
                "kwalpha kwbeta", limits=LIMITS, jobs=2
            )
        finally:
            engine.close_pool()
        assert engine.shard_plan is not None

        nodes = [row.node for row in report.rows]
        assert nodes[0] == "match" and nodes[-1] == "total"
        paths_row = next(row for row in report.rows if row.node == "paths")
        assert paths_row.time_ms is not None
        assert paths_row.counters["produced"] >= 1
        assert "shard_skips" in paths_row.counters
        total = report.rows[-1]
        assert total.counters["candidates"] >= 1

        # the pooled pass's merged trace rode along
        assert report.pool_trace is not None
        workers = [
            span for span in report.pool_trace.walk()
            if span.name == "worker.batch"
        ]
        assert workers and all("transport" in w.tags for w in workers)
        assert "pool:" in report.render().splitlines()[-1]

        # analysed answers are the plain answers
        serial = KeywordSearchEngine(planted, shards=3)
        expected = [
            (r.render(), r.score, r.rank)
            for r in serial.search("kwalpha kwbeta", limits=LIMITS)
        ]
        assert [
            (r.render(), r.score, r.rank) for r in report.results
        ] == expected

    def test_metrics_snapshot_reflects_enabled_runs(self, engine):
        assert engine.metrics_snapshot()["counters"] == {}
        obs_metrics.set_enabled(True)
        try:
            engine.search("Smith XML")
        finally:
            obs_metrics.set_enabled(False)
        counters = engine.metrics_snapshot()["counters"]
        assert counters["executor.runs"] == 1
        obs_metrics.REGISTRY.reset()
