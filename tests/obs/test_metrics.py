"""Unit tests for the metrics registry (repro.obs.metrics)."""

import itertools
import pickle

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    render_report,
)


def sample_registry(scale=1):
    registry = MetricsRegistry()
    registry.inc("executor.runs", 2 * scale)
    registry.inc("csr.compiles")
    registry.gauge("pool.workers", 2.0 * scale)
    for value in (1, 3, 700, 10**9):
        registry.observe("executor.candidates_per_run", value * scale)
    return registry


class TestHistogram:
    def test_power_of_two_buckets(self):
        histogram = Histogram(max_exp=3)
        assert histogram.bounds == (1, 2, 4, 8)
        for value in (1, 2, 2, 5, 100):
            histogram.observe(value)
        assert histogram.nonzero() == {"<=1": 1, "<=2": 2, "<=8": 1, ">8": 1}
        assert histogram.observations == 5

    def test_state_is_order_independent(self):
        values = [0.5, 7, 7, 300, 2**30]
        one, two = Histogram(), Histogram()
        for value in values:
            one.observe(value)
        for value in reversed(values):
            two.observe(value)
        assert one.counts == two.counts


class TestRegistry:
    def test_ops_counts_every_mutation(self):
        registry = sample_registry()
        # two incs, one gauge, four observations
        assert registry.ops == 7

    def test_snapshot_is_plain_sorted_and_picklable(self):
        snapshot = sample_registry().snapshot()
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["executor.runs"] == 2
        assert snapshot["gauges"]["pool.workers"] == 2.0

    def test_merge_adds_counters_and_buckets_maxes_gauges(self):
        registry = sample_registry(scale=1)
        registry.merge_snapshot(sample_registry(scale=3).snapshot())
        snapshot = registry.snapshot()
        assert snapshot["counters"]["executor.runs"] == 2 + 6
        assert snapshot["gauges"]["pool.workers"] == 6.0
        histogram = snapshot["histograms"]["executor.candidates_per_run"]
        assert sum(histogram) == 8

    def test_merge_is_commutative_and_associative(self):
        deltas = [sample_registry(scale=k).snapshot() for k in (1, 2, 5)]
        snapshots = []
        for order in itertools.permutations(deltas):
            registry = MetricsRegistry()
            for delta in order:
                registry.merge_snapshot(delta)
            snapshots.append(registry.snapshot())
        assert all(snapshot == snapshots[0] for snapshot in snapshots)

    def test_reset_empties_everything(self):
        registry = sample_registry()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "ops": 0,
        }


class TestDiffSnapshots:
    def test_delta_replays_workload_contribution(self):
        registry = sample_registry()
        before = registry.snapshot()
        registry.inc("executor.runs", 5)
        registry.observe("executor.candidates_per_run", 2)
        after = registry.snapshot()
        delta = diff_snapshots(before, after)
        assert delta["counters"] == {"executor.runs": 5}
        replay = MetricsRegistry()
        replay.merge_snapshot(before)
        replay.merge_snapshot(delta)
        merged = replay.snapshot()
        assert merged["counters"] == after["counters"]
        assert merged["histograms"] == after["histograms"]

    def test_unchanged_names_are_dropped(self):
        registry = sample_registry()
        snapshot = registry.snapshot()
        delta = diff_snapshots(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}
        assert delta["ops"] == 0


class TestRenderReport:
    def test_report_lists_sections(self):
        text = render_report(sample_registry().snapshot(), title="t")
        assert text.startswith("== t ==")
        assert "counters:" in text and "executor.runs" in text
        assert "gauges:" in text and "histograms:" in text

    def test_empty_snapshot_says_so(self):
        assert "(empty)" in render_report(MetricsRegistry().snapshot())
