"""Unit tests for connection and joining-network enumeration."""

import pytest

from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.search import (
    JoiningNetwork,
    SearchLimits,
    SingleTupleAnswer,
    find_connections,
    find_joining_networks,
)
from repro.errors import QueryError


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


class TestSearchLimits:
    def test_defaults_are_valid(self):
        SearchLimits()

    def test_zero_rdb_length_rejected(self):
        with pytest.raises(QueryError):
            SearchLimits(max_rdb_length=0)

    def test_zero_tuples_rejected(self):
        with pytest.raises(QueryError):
            SearchLimits(max_tuples=0)

    def test_non_positive_budgets_rejected(self):
        with pytest.raises(QueryError):
            SearchLimits(max_paths_per_pair=0)
        with pytest.raises(QueryError):
            SearchLimits(max_networks=-1)

    def test_none_budgets_allowed(self):
        limits = SearchLimits(max_paths_per_pair=None, max_networks=None)
        assert limits.max_paths_per_pair is None


class TestFindConnections:
    def test_exactly_two_keywords_required(self, data_graph, index):
        matches = match_keywords(index, ("XML",))
        with pytest.raises(QueryError):
            list(find_connections(data_graph, matches))

    def test_paper_connection_set(self, data_graph, smith_xml):
        answers = list(
            find_connections(
                data_graph, smith_xml, SearchLimits(max_rdb_length=3)
            )
        )
        rendered = {a.render() for a in answers}
        assert rendered == {
            "d1(XML) – e1(Smith)",
            "p1(XML) – w_f1 – e1(Smith)",
            "p1(XML) – d1(XML) – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – e2(Smith)",
            "p2(XML) – d2(XML) – e2(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        }

    def test_all_answers_cover_both_keywords(self, data_graph, smith_xml):
        for answer in find_connections(
            data_graph, smith_xml, SearchLimits(max_rdb_length=3)
        ):
            assert isinstance(answer, Connection)
            covered = set()
            for keywords in answer.keyword_matches.values():
                covered |= keywords
            assert {"XML", "Smith"} <= covered

    def test_longer_budget_adds_answers(self, data_graph, smith_xml):
        three = list(
            find_connections(data_graph, smith_xml, SearchLimits(max_rdb_length=3))
        )
        four = list(
            find_connections(data_graph, smith_xml, SearchLimits(max_rdb_length=4))
        )
        assert len(four) > len(three)

    def test_single_tuple_answer_when_one_tuple_matches_both(
        self, company_db
    ):
        from repro.core.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(company_db)
        matches = match_keywords(engine.index, ("XML", "retrieval"))
        answers = list(find_connections(engine.data_graph, matches))
        singles = [a for a in answers if isinstance(a, SingleTupleAnswer)]
        assert any(
            company_db.tuple(s.tid).label == "d2" for s in singles
        )

    def test_single_tuples_can_be_disabled(self, company_db):
        from repro.core.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(company_db)
        matches = match_keywords(engine.index, ("XML", "retrieval"))
        answers = list(
            find_connections(
                engine.data_graph, matches, include_single_tuples=False
            )
        )
        assert not any(isinstance(a, SingleTupleAnswer) for a in answers)


class TestSingleTupleAnswer:
    def test_metrics_are_degenerate(self, data_graph, company_db):
        tid = company_db.get("DEPARTMENT", "d2").tid
        answer = SingleTupleAnswer(data_graph, tid, frozenset({"a", "b"}))
        assert answer.rdb_length == 0
        assert answer.er_length == 0
        assert answer.loose_joint_count() == 0
        assert answer.ambiguity_factor() == 1

    def test_render(self, data_graph, company_db):
        tid = company_db.get("DEPARTMENT", "d2").tid
        answer = SingleTupleAnswer(data_graph, tid, frozenset({"b", "a"}))
        assert answer.render() == "d2(a,b)"


class TestFindJoiningNetworks:
    def test_three_keyword_query(self, company_db):
        from repro.core.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(company_db)
        matches = match_keywords(engine.index, ("Smith", "Alice", "Cs"))
        networks = list(
            find_joining_networks(
                engine.data_graph, matches, SearchLimits(max_tuples=5)
            )
        )
        assert networks
        for network in networks:
            assert network.covered_keywords == {"Smith", "Alice", "Cs"}
            assert engine.data_graph.is_connected_set(network.tuples)

    def test_empty_keyword_yields_nothing(self, data_graph, index):
        matches = match_keywords(index, ("Smith", "unicorn"))
        assert list(find_joining_networks(data_graph, matches)) == []

    def test_no_keywords_rejected(self, data_graph):
        with pytest.raises(QueryError):
            list(find_joining_networks(data_graph, []))

    def test_networks_deduplicated(self, data_graph, index):
        matches = match_keywords(index, ("Smith", "XML"))
        networks = list(
            find_joining_networks(data_graph, matches, SearchLimits(max_tuples=3))
        )
        keys = [
            (network.tuples, tuple(sorted(network.keyword_tuples.items())))
            for network in networks
        ]
        assert len(keys) == len(set(keys))


class TestJoiningNetworkMetrics:
    @pytest.fixture
    def network(self, data_graph, company_db):
        members = frozenset(
            {
                company_db.get("DEPARTMENT", "d1").tid,
                company_db.get("EMPLOYEE", "e3").tid,
                company_db.get("DEPENDENT", "t1").tid,
            }
        )
        return JoiningNetwork(
            data_graph,
            members,
            {
                "cs": company_db.get("DEPARTMENT", "d1").tid,
                "alice": company_db.get("DEPENDENT", "t1").tid,
            },
        )

    def test_rdb_length_counts_tree_edges(self, network):
        assert network.rdb_length == 2

    def test_er_length_without_middles(self, network):
        assert network.er_length == 2

    def test_er_length_collapses_interior_middles(self, data_graph, company_db):
        members = frozenset(
            {
                company_db.get("PROJECT", "p1").tid,
                company_db.by_label("w_f1").tid,
                company_db.get("EMPLOYEE", "e1").tid,
            }
        )
        network = JoiningNetwork(
            data_graph,
            members,
            {
                "xml": company_db.get("PROJECT", "p1").tid,
                "smith": company_db.get("EMPLOYEE", "e1").tid,
            },
        )
        assert network.rdb_length == 2
        assert network.er_length == 1

    def test_keyword_pair_paths(self, network):
        paths = network.keyword_pair_paths()
        assert len(paths) == 1
        assert paths[0].rdb_length == 2

    def test_loose_joint_count_functional_tree(self, network):
        assert network.loose_joint_count() == 0

    def test_ambiguity_factor_functional_tree(self, network):
        assert network.ambiguity_factor() == 1

    def test_render_marks_keywords(self, network):
        rendered = network.render()
        assert "d1(cs)" in rendered
        assert "t1(alice)" in rendered
        assert "e3" in rendered

    def test_equality_and_hash(self, network, data_graph, company_db):
        clone = JoiningNetwork(
            data_graph,
            network.tuples,
            dict(network.keyword_tuples),
        )
        assert clone == network
        assert len({clone, network}) == 1
