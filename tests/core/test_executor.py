"""Differential tests: the planner/executor pipeline vs the legacy paths.

``legacy_search`` below is a verbatim port of the pre-pipeline
``KeywordSearchEngine.search`` / ``_search_or`` code (full enumeration
through ``find_connections`` / ``find_joining_networks``, ranked with
``rank_connections``, cut after sorting).  The pipeline must reproduce
it bit for bit — answers, order, scores, ranks and budget errors — in
full mode, and in pushdown mode whenever no budget error interferes.
"""

from itertools import combinations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.executor import ExecutionStats, Executor, SharedEnumerations
from repro.core.matching import match_keywords
from repro.core.plan import plan_query
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    WeightedRanker,
    rank_connections,
)
from repro.core.search import (
    JoiningNetwork,
    SearchLimits,
    SingleTupleAnswer,
    find_connections,
    find_joining_networks,
)
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.errors import SearchLimitError
from repro.graph.fast_traversal import SharedStream

RANKERS = [
    ClosenessRanker(),
    RdbLengthRanker(),
    ErLengthRanker(),
    InstanceAmbiguityRanker(),
    WeightedRanker(),
]


def legacy_search(engine, query, ranker=None, limits=None, top_k=None,
                  semantics="and"):
    """The pre-pipeline engine, ported verbatim (enumerate, sort, cut)."""
    ranker = ranker or engine.ranker
    limits = limits or engine.limits
    matches = engine.match(query)

    if semantics == "or":
        return _legacy_search_or(engine, matches, ranker, limits, top_k)
    if any(match.is_empty for match in matches):
        return []

    if len(matches) == 1:
        answers = [
            SingleTupleAnswer(
                engine.data_graph, tid, frozenset((matches[0].keyword,))
            )
            for tid in matches[0].tuple_ids
        ]
    elif len(matches) == 2:
        answers = list(
            find_connections(
                engine.data_graph,
                matches,
                limits,
                use_fast_traversal=engine.use_fast_traversal,
                cache=engine.traversal_cache,
            )
        )
    else:
        answers = list(
            find_joining_networks(
                engine.data_graph,
                matches,
                limits,
                use_fast_traversal=engine.use_fast_traversal,
                cache=engine.traversal_cache,
            )
        )

    ranked = rank_connections(answers, ranker)
    if top_k is not None:
        ranked = ranked[:top_k]
    return [(answer.render(), score, position + 1)
            for position, (answer, score) in enumerate(ranked)]


def _legacy_search_or(engine, matches, ranker, limits, top_k):
    populated = [match for match in matches if not match.is_empty]
    if not populated:
        return []

    answers = []
    seen_singles = {}
    for match in populated:
        for tid in match.tuple_ids:
            seen_singles.setdefault(tid, set()).add(match.keyword)
    for tid, keywords in seen_singles.items():
        answers.append(
            SingleTupleAnswer(engine.data_graph, tid, frozenset(keywords))
        )
    if len(populated) >= 2:
        for first, second in combinations(populated, 2):
            answers.extend(
                find_connections(
                    engine.data_graph,
                    (first, second),
                    limits,
                    include_single_tuples=False,
                    use_fast_traversal=engine.use_fast_traversal,
                    cache=engine.traversal_cache,
                )
            )
    if len(populated) >= 3:
        answers.extend(
            find_joining_networks(
                engine.data_graph,
                populated,
                limits,
                use_fast_traversal=engine.use_fast_traversal,
                cache=engine.traversal_cache,
            )
        )

    def coverage(answer):
        if isinstance(answer, (SingleTupleAnswer, JoiningNetwork)):
            return len(answer.covered_keywords)
        covered = set()
        for keywords in answer.keyword_matches.values():
            covered |= keywords
        return len(covered)

    scored = [
        (answer, (-coverage(answer),) + ranker.score(answer))
        for answer in answers
    ]
    scored.sort(key=lambda pair: (pair[1], pair[0].render()))
    if top_k is not None:
        scored = scored[:top_k]
    return [(answer.render(), score, position + 1)
            for position, (answer, score) in enumerate(scored)]


def pipeline_search(engine, query, pushdown=None, **options):
    results = engine.search(query, pushdown=pushdown, **options)
    return [(r.render(), r.score, r.rank) for r in results]


QUERIES = ["XML", "Smith XML", "Smith Alice Cs", "Smith unicorn", "Smith"]
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)


class TestBitIdentityCompany:
    @pytest.mark.parametrize("semantics", ["and", "or"])
    @pytest.mark.parametrize("ranker", RANKERS, ids=lambda r: r.name)
    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "networkx"])
    def test_full_mode_matches_legacy(self, company_db, semantics, ranker, fast):
        engine = KeywordSearchEngine(company_db, use_fast_traversal=fast)
        for query in QUERIES:
            for top_k in (None, 1, 3, 100):
                expected = legacy_search(
                    engine, query, ranker=ranker, limits=LIMITS,
                    top_k=top_k, semantics=semantics,
                )
                actual = pipeline_search(
                    engine, query, pushdown=False, ranker=ranker,
                    limits=LIMITS, top_k=top_k, semantics=semantics,
                )
                assert actual == expected, (query, top_k)

    @pytest.mark.parametrize("semantics", ["and", "or"])
    @pytest.mark.parametrize("ranker", RANKERS, ids=lambda r: r.name)
    def test_pushdown_matches_legacy(self, engine, semantics, ranker):
        for query in QUERIES:
            for top_k in (1, 2, 5, 100):
                expected = legacy_search(
                    engine, query, ranker=ranker, limits=LIMITS,
                    top_k=top_k, semantics=semantics,
                )
                actual = pipeline_search(
                    engine, query, ranker=ranker, limits=LIMITS,
                    top_k=top_k, semantics=semantics,
                )
                assert actual == expected, (query, top_k)

    def test_forced_streaming_without_cut_matches_legacy(self, engine):
        for semantics in ("and", "or"):
            for query in QUERIES:
                expected = legacy_search(
                    engine, query, limits=LIMITS, semantics=semantics
                )
                actual = pipeline_search(
                    engine, query, pushdown=True, limits=LIMITS,
                    semantics=semantics,
                )
                assert actual == expected, (query, semantics)


@pytest.fixture(scope="module")
def synthetic_engine():
    database = generate_company_like(
        SyntheticConfig(
            departments=8,
            projects_per_department=3,
            employees_per_department=8,
            works_on_per_employee=3,
            seed=17,
        )
    )
    workload = generate_workload(
        database,
        WorkloadConfig(queries=4, keywords_per_query=2,
                       matches_per_keyword=3, seed=13),
    )
    return KeywordSearchEngine(database), [w.text for w in workload]


class TestBitIdentitySynthetic:
    def test_top_k_pushdown_matches_legacy(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=5)
        for text in texts:
            for top_k in (1, 3, 10):
                expected = legacy_search(
                    engine, text, limits=limits, top_k=top_k
                )
                actual = pipeline_search(
                    engine, text, limits=limits, top_k=top_k
                )
                assert actual == expected, (text, top_k)

    def test_pushdown_enumerates_less(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=6)
        pushed = full = 0
        for text in texts:
            engine.search(text, top_k=2, limits=limits)
            assert engine.last_stats.pushdown
            pushed += engine.last_stats.candidates
            engine.search(text, top_k=2, limits=limits, pushdown=False)
            assert not engine.last_stats.pushdown
            full += engine.last_stats.candidates
        assert pushed < full

    def test_or_three_keywords_matches_legacy(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=4, max_tuples=4)
        query = texts[0] + " " + texts[1].split()[0]
        for top_k in (None, 2, 5):
            expected = legacy_search(
                engine, query, limits=limits, top_k=top_k, semantics="or"
            )
            actual = pipeline_search(
                engine, query, limits=limits, top_k=top_k, semantics="or"
            )
            assert actual == expected, top_k


class TestBudgetBehaviour:
    def test_full_mode_budget_error_identical_to_legacy(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=6, max_paths_per_pair=5)
        with pytest.raises(SearchLimitError) as legacy_error:
            legacy_search(engine, texts[0], limits=limits)
        with pytest.raises(SearchLimitError) as pipeline_error:
            engine.search(texts[0], limits=limits)
        assert str(pipeline_error.value) == str(legacy_error.value)
        assert pipeline_error.value.context == legacy_error.value.context

    def test_pushdown_skips_budget_beyond_the_cut(self, synthetic_engine):
        """Early termination may never reach a budget full mode exceeds."""
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=6, max_paths_per_pair=5)
        with pytest.raises(SearchLimitError):
            engine.search(texts[0], top_k=2, limits=limits, pushdown=False)
        results = engine.search(texts[0], top_k=2, limits=limits)
        reference = engine.search(
            texts[0], top_k=2, limits=SearchLimits(max_rdb_length=6)
        )
        assert [(r.render(), r.score) for r in results] == [
            (r.render(), r.score) for r in reference
        ]

    def test_pushdown_raises_when_budget_inside_consumed_prefix(
        self, synthetic_engine
    ):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=6, max_paths_per_pair=1)
        with pytest.raises(SearchLimitError):
            engine.search(texts[0], top_k=1000, limits=limits)


class TestStreaming:
    def test_stream_equals_search(self, engine):
        for semantics in ("and", "or"):
            for query in ("Smith XML", "Smith Alice Cs"):
                streamed = [
                    (r.render(), r.score, r.rank)
                    for r in engine.search_stream(
                        query, limits=LIMITS, semantics=semantics
                    )
                ]
                assert streamed == pipeline_search(
                    engine, query, limits=LIMITS, semantics=semantics
                )

    def test_stream_is_lazy_under_top_k(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=6)
        engine.search(texts[0], limits=limits, pushdown=False)
        full_candidates = engine.last_stats.candidates
        stream = engine.search_stream(texts[0], top_k=1, limits=limits)
        first = next(stream)
        assert engine.last_stats.candidates < full_candidates
        stream.close()
        reference = engine.search(texts[0], top_k=1, limits=limits)
        assert first.render() == reference[0].render()


class TestSharedEnumerations:
    def test_shared_stream_replays_items(self):
        calls = []

        def factory():
            calls.append(1)
            yield from [10, 20, 30]

        stream = SharedStream(factory)
        assert list(stream) == [10, 20, 30]
        assert list(stream) == [10, 20, 30]
        assert len(calls) == 1
        assert stream.consumers == 2
        assert stream.produced == 3

    def test_shared_stream_interleaved_consumers(self):
        stream = SharedStream(lambda: iter(range(5)))
        one, two = iter(stream), iter(stream)
        assert next(one) == 0
        assert next(two) == 0
        assert next(two) == 1
        assert list(one) == [1, 2, 3, 4]
        assert list(two) == [2, 3, 4]

    def test_shared_stream_replays_errors_at_the_same_point(self):
        def failing():
            yield 1
            yield 2
            raise SearchLimitError("budget", max_paths=2)

        stream = SharedStream(failing)
        for __ in range(2):
            seen = []
            with pytest.raises(SearchLimitError):
                for item in stream:
                    seen.append(item)
            assert seen == [1, 2]
        assert stream.produced == 2

    def test_partial_consumer_extends_later(self):
        produced = []

        def factory():
            for value in range(4):
                produced.append(value)
                yield value

        stream = SharedStream(factory)
        first = iter(stream)
        assert next(first) == 0
        assert produced == [0]
        assert list(stream) == [0, 1, 2, 3]
        assert produced == [0, 1, 2, 3]

    def test_batch_shares_identical_subplans(self, synthetic_engine):
        engine, texts = synthetic_engine
        limits = SearchLimits(max_rdb_length=5)
        # Same keywords, different spellings: distinct query texts whose
        # pair sub-plans name the same tuple pairs.
        batch = [texts[0], texts[0].upper(), texts[1]]
        batched = engine.search_batch(batch, limits=limits)
        assert engine.last_shared.hits > 0
        for text, results in zip(batch, batched):
            individual = engine.search(text, limits=limits)
            assert [(r.render(), r.score) for r in results] == [
                (r.render(), r.score) for r in individual
            ]

    def test_executor_reuses_streams_within_a_query(self, company_db):
        engine = KeywordSearchEngine(company_db)
        shared = SharedEnumerations()
        executor = Executor(
            engine.data_graph,
            cache=engine.traversal_cache,
            shared=shared,
        )
        plan = plan_query(
            match_keywords(engine.index, ("Smith", "XML"))
        )
        executor.run(plan, ClosenessRanker(), LIMITS)
        first_misses = shared.misses
        executor.run(plan, ClosenessRanker(), LIMITS)
        assert shared.misses == first_misses
        assert shared.hits >= first_misses


class TestStats:
    def test_candidates_counted_in_full_mode(self, engine):
        results = engine.search("Smith XML", limits=LIMITS)
        assert engine.last_stats.candidates == len(results)
        assert engine.last_stats.emitted == len(results)
        assert not engine.last_stats.pushdown

    def test_emitted_respects_cut(self, engine):
        engine.search("Smith XML", top_k=2, limits=LIMITS)
        assert engine.last_stats.emitted == 2
        assert engine.last_stats.pushdown

    def test_top_k_zero_identical_in_both_modes(self, engine):
        assert engine.search("Smith XML", top_k=0, limits=LIMITS) == []
        assert engine.search(
            "Smith XML", top_k=0, limits=LIMITS, pushdown=False
        ) == []

    def test_empty_stream_still_updates_stats(self, engine):
        engine.search("Smith XML", limits=LIMITS)  # plant non-run stats
        assert list(engine.search_stream("unicorn rainbow", top_k=2)) == []
        assert engine.last_stats.pushdown
        assert engine.last_stats.emitted == 0
        assert engine.last_stats.candidates == 0


class TestStatsMerge:
    """Parallel workers complete in arbitrary order; aggregation must not
    care (every field folds with a commutative, associative operation)."""

    @staticmethod
    def _samples():
        return [
            ExecutionStats(candidates=3, emitted=2, pushdown=False, shard_skips=1),
            ExecutionStats(candidates=0, emitted=0, pushdown=True, shard_skips=0),
            ExecutionStats(candidates=7, emitted=7, pushdown=False, shard_skips=12),
            ExecutionStats(candidates=1, emitted=1, pushdown=True, shard_skips=4),
        ]

    def test_merge_is_commutative_and_deterministic(self):
        from itertools import permutations

        totals = set()
        for order in permutations(range(4)):
            samples = self._samples()
            merged = ExecutionStats()
            for index in order:
                merged.merge(samples[index])
            totals.add(
                (merged.candidates, merged.emitted, merged.pushdown,
                 merged.shard_skips)
            )
        assert totals == {(11, 10, True, 17)}

    def test_merge_is_associative(self):
        a, b, c, __ = self._samples()
        left = ExecutionStats()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        ab = ExecutionStats()
        ab.merge(a)
        ab.merge(b)
        right = ExecutionStats()
        right.merge(ab)
        right.merge(c)
        assert (left.candidates, left.emitted, left.pushdown, left.shard_skips) == (
            right.candidates, right.emitted, right.pushdown, right.shard_skips
        )

    def test_every_field_participates_in_merge(self):
        """A field added to ExecutionStats without a merge rule would
        silently vanish from parallel aggregation — catch it here."""
        from dataclasses import fields

        merged = ExecutionStats()
        merged.merge(
            ExecutionStats(
                candidates=1, emitted=1, pushdown=True, shard_skips=1, pruned=1
            )
        )
        for field in fields(ExecutionStats):
            default = field.default
            assert getattr(merged, field.name) != default, field.name
