"""Unit tests for schema-level closeness analysis and query planning."""

import pytest

from repro.core.schema_analysis import SchemaAnalyzer, analyze_relational_schema
from repro.core.search import SearchLimits
from repro.datasets.schemas import chain_schema, star_schema


@pytest.fixture
def analyzer(er_schema):
    return SchemaAnalyzer(er_schema, max_length=3)


class TestPathsBetween:
    def test_department_employee_paths(self, analyzer):
        summaries = analyzer.paths_between("DEPARTMENT", "EMPLOYEE")
        rendered = {str(s.path) for s in summaries}
        assert "DEPARTMENT 1:N EMPLOYEE" in rendered
        assert "DEPARTMENT 1:N PROJECT N:M EMPLOYEE" in rendered

    def test_verdicts_attached(self, analyzer):
        summaries = analyzer.paths_between("DEPARTMENT", "EMPLOYEE")
        by_path = {str(s.path): s.verdict.is_close for s in summaries}
        assert by_path["DEPARTMENT 1:N EMPLOYEE"] is True
        assert by_path["DEPARTMENT 1:N PROJECT N:M EMPLOYEE"] is False

    def test_cached(self, analyzer):
        assert analyzer.paths_between("DEPARTMENT", "EMPLOYEE") is \
            analyzer.paths_between("DEPARTMENT", "EMPLOYEE")

    def test_close_paths_filter(self, analyzer):
        close = analyzer.close_paths("DEPARTMENT", "DEPENDENT")
        assert len(close) == 1
        assert str(close[0].path) == "DEPARTMENT 1:N EMPLOYEE 1:N DEPENDENT"


class TestDistances:
    def test_closest_distance_direct(self, analyzer):
        assert analyzer.closest_distance("DEPARTMENT", "EMPLOYEE") == 1

    def test_closest_distance_transitive(self, analyzer):
        assert analyzer.closest_distance("DEPARTMENT", "DEPENDENT") == 2

    def test_closest_distance_none_when_only_loose(self):
        # Satellite-to-satellite in a 1:N star is always through the hub
        # joint: loose.
        analyzer = SchemaAnalyzer(star_schema(3, "1:N"), max_length=2)
        assert analyzer.closest_distance("S0", "S1") is None
        assert analyzer.any_distance("S0", "S1") == 2

    def test_distance_none_when_no_path(self):
        analyzer = SchemaAnalyzer(chain_schema(["1:N"] * 5), max_length=2)
        assert analyzer.any_distance("E0", "E5") is None


class TestClosenessMatrix:
    def test_company_matrix(self, analyzer):
        matrix = analyzer.closeness_matrix()
        assert matrix[("DEPARTMENT", "EMPLOYEE")] == "both"
        assert matrix[("DEPENDENT", "EMPLOYEE")] == "close"
        assert matrix[("DEPENDENT", "PROJECT")] == "loose"

    def test_star_matrix_satellites_loose(self):
        analyzer = SchemaAnalyzer(star_schema(2, "1:N"), max_length=2)
        matrix = analyzer.closeness_matrix()
        assert matrix[("S0", "S1")] == "loose"
        assert matrix[("HUB", "S0")] == "close"

    def test_disconnected_pair_is_none(self):
        analyzer = SchemaAnalyzer(chain_schema(["1:N"] * 4), max_length=1)
        assert analyzer.closeness_matrix()[("E0", "E4")] == "none"

    def test_report_mentions_all_pairs(self, analyzer):
        report = analyzer.report()
        assert "DEPARTMENT -- EMPLOYEE: both" in report
        assert "[loose] DEPARTMENT 1:N PROJECT N:M EMPLOYEE" in report


class TestSuggestLimits:
    def test_direct_pair_needs_small_bounds(self, analyzer):
        limits = analyzer.suggest_limits(["DEPARTMENT"], ["EMPLOYEE"])
        # Close distance 1 + slack 1 -> er bound 2 -> rdb bound 4.
        assert limits.max_rdb_length == 4

    def test_loose_only_pair_uses_any_distance(self):
        analyzer = SchemaAnalyzer(star_schema(3, "1:N"), max_length=3)
        limits = analyzer.suggest_limits(["S0"], ["S1"])
        assert limits.max_rdb_length == 6  # distance 2 + slack 1, x2

    def test_disconnected_returns_defaults(self):
        analyzer = SchemaAnalyzer(chain_schema(["1:N"] * 4), max_length=1)
        defaults = SearchLimits(max_rdb_length=7)
        limits = analyzer.suggest_limits(["E0"], ["E4"], defaults=defaults)
        assert limits is defaults

    def test_bounds_cover_paper_connections(self, analyzer, engine):
        """Planned limits must still find all seven searched connections."""
        from repro.core.connections import Connection
        from repro.core.matching import match_keywords
        from repro.core.search import find_connections

        matches = match_keywords(engine.index, ("XML", "Smith"))
        source_relations = {t.relation for t in matches[0].tuple_ids}
        target_relations = {t.relation for t in matches[1].tuple_ids}
        limits = analyzer.suggest_limits(source_relations, target_relations)
        answers = [
            a
            for a in find_connections(engine.data_graph, matches, limits)
            if isinstance(a, Connection)
        ]
        rendered = {a.render() for a in answers}
        for expected in (
            "d1(XML) – e1(Smith)",
            "p1(XML) – w_f1 – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        ):
            assert expected in rendered


class TestRelationalEntryPoint:
    def test_analyze_relational_schema(self, db_schema):
        analyzer = analyze_relational_schema(db_schema, max_length=2)
        # Middle relation collapses: EMPLOYEE--PROJECT is one conceptual
        # step (the N:M relationship), so distance 1.
        assert analyzer.any_distance("EMPLOYEE", "PROJECT") == 1

    def test_conceptual_distances_match_instance_er_lengths(self, db_schema):
        analyzer = analyze_relational_schema(db_schema, max_length=3)
        # DEPARTMENT to DEPENDENT: close at 2 (dept-emp-dependent).
        assert analyzer.closest_distance("DEPARTMENT", "DEPENDENT") == 2
