"""Unit tests for instance-level closeness and ambiguity (paper §3/§4)."""

import pytest

from repro.core.ambiguity import (
    ambiguity_factor,
    close_connection_exists,
    is_instance_close,
    joint_fan_counts,
)
from repro.core.connections import Connection
from repro.relational.database import TupleId


def connection(data_graph, labels):
    return Connection.from_labels(data_graph, labels)


class TestInstanceCloseness:
    """Paper §3: connections 3 and 4 are instance close, 6 is not."""

    def test_connection3_is_instance_close(self, data_graph):
        # p1 - d1 - e1 is loose at schema level, but e1 really works on p1.
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert c.verdict().is_loose
        assert is_instance_close(c)

    def test_connection4_is_instance_close(self, data_graph):
        # d1 - p1 - w_f1 - e1: e1 really works for d1.
        c = connection(data_graph, ["d1", "p1", "w_f1", "e1"])
        assert c.verdict().is_loose
        assert is_instance_close(c)

    def test_connection6_is_instance_loose(self, data_graph):
        # p2 - d2 - e2: Barbara Smith does not work on p2.
        c = connection(data_graph, ["p2", "d2", "e2"])
        assert c.verdict().is_loose
        assert not is_instance_close(c)

    def test_connection7_is_instance_close(self, data_graph):
        # d2 - p3 - w_f2 - e2: e2 really works for d2.
        c = connection(data_graph, ["d2", "p3", "w_f2", "e2"])
        assert is_instance_close(c)

    def test_schema_close_is_trivially_instance_close(self, data_graph):
        assert is_instance_close(connection(data_graph, ["d1", "e1"]))

    def test_corroboration_radius_is_configurable(self, data_graph):
        # Connection 3's corroboration (p1-w_f1-e1) needs two edges; with a
        # radius of one it cannot be found.
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert not is_instance_close(c, max_rdb_length=1)
        assert is_instance_close(c, max_rdb_length=2)


class TestCloseConnectionExists:
    def test_direct_edge(self, data_graph):
        assert close_connection_exists(
            data_graph,
            TupleId("DEPARTMENT", ("d1",)),
            TupleId("EMPLOYEE", ("e1",)),
            max_rdb_length=1,
        )

    def test_via_middle(self, data_graph):
        assert close_connection_exists(
            data_graph,
            TupleId("PROJECT", ("p1",)),
            TupleId("EMPLOYEE", ("e1",)),
            max_rdb_length=2,
        )

    def test_absent(self, data_graph):
        assert not close_connection_exists(
            data_graph,
            TupleId("PROJECT", ("p2",)),
            TupleId("EMPLOYEE", ("e2",)),
            max_rdb_length=2,
        )


class TestFanCounts:
    def test_connection3_joint_fans(self, data_graph):
        # Joint at d1 between p1 (N:1 in) and e1 (1:N out): d1 controls one
        # project (p1) and employs two (e1, e3).
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert joint_fan_counts(c, 0) == (1, 2)

    def test_connection6_joint_fans(self, data_graph):
        # Joint at d2: controls two projects (p2, p3), employs two (e2, e4).
        c = connection(data_graph, ["p2", "d2", "e2"])
        assert joint_fan_counts(c, 0) == (2, 2)

    def test_fans_via_middle_step(self, data_graph):
        # d2(1:N)p2(N:M via w_f3)e3(1:N)t1: joint at e3's left side counts
        # projects reachable through WORKS_FOR.
        c = connection(data_graph, ["d2", "p2", "w_f3", "e3", "t1"])
        joints = c.verdict().loose_joint_positions
        assert joints == (1,)
        fan_in, fan_out = joint_fan_counts(c, 1)
        assert fan_in == 1   # e3 works on exactly one project (p2)
        assert fan_out == 2  # e3 has two dependents (t1, t2)


class TestAmbiguityFactor:
    def test_close_connection_is_one(self, data_graph):
        assert ambiguity_factor(connection(data_graph, ["d1", "e1"])) == 1

    def test_loose_without_joint_is_one(self, data_graph):
        # Connection 4 is loose but joint-free; the factor sees no joints.
        c = connection(data_graph, ["d1", "p1", "w_f1", "e1"])
        assert ambiguity_factor(c) == 1

    def test_connection3_factor(self, data_graph):
        assert ambiguity_factor(connection(data_graph, ["p1", "d1", "e1"])) == 2

    def test_connection6_factor(self, data_graph):
        assert ambiguity_factor(connection(data_graph, ["p2", "d2", "e2"])) == 4

    def test_factor_orders_by_actual_participation(self, data_graph):
        # The paper's refinement: connection 6's joint is busier than 3's.
        three = ambiguity_factor(connection(data_graph, ["p1", "d1", "e1"]))
        six = ambiguity_factor(connection(data_graph, ["p2", "d2", "e2"]))
        assert three < six
