"""Unit tests for the close/loose association classifier (paper §2)."""

import pytest

from repro.core.associations import (
    AssociationKind,
    classify_cardinalities,
    classify_er_path,
    loose_joints,
)
from repro.er.cardinality import Cardinality
from repro.er.paths import ERPath
from repro.errors import PathError


def cards(*texts):
    return [Cardinality.parse(text) for text in texts]


class TestLooseJoints:
    def test_fan_in_fan_out_is_a_joint(self):
        assert loose_joints(cards("N:1", "1:N")) == (0,)

    def test_functional_chain_has_no_joints(self):
        assert loose_joints(cards("1:N", "1:N")) == ()
        assert loose_joints(cards("N:1", "N:1")) == ()

    def test_fan_out_then_fan_in_is_not_a_joint(self):
        # 1:N then N:1: the middle entity is referenced by both ends, no
        # invented association.
        assert loose_joints(cards("1:N", "N:1")) == ()

    def test_nm_step_alone_is_not_a_joint(self):
        assert loose_joints(cards("1:N", "N:M")) == ()

    def test_nm_then_fan_out_is_a_joint(self):
        # ... N:M E 1:N ...: many left per E, many right per E.
        assert loose_joints(cards("N:M", "1:N")) == (0,)

    def test_multiple_joints(self):
        sequence = cards("N:1", "1:N", "N:1", "1:N")
        assert loose_joints(sequence) == (0, 2)

    def test_single_step_has_no_joints(self):
        assert loose_joints(cards("N:M")) == ()

    def test_one_to_one_dampens_joints(self):
        assert loose_joints(cards("1:1", "1:N")) == ()
        assert loose_joints(cards("N:1", "1:1")) == ()


class TestClassifyCardinalities:
    def test_empty_rejected(self):
        with pytest.raises(PathError):
            classify_cardinalities([])

    def test_immediate_one_to_many(self):
        verdict = classify_cardinalities(cards("1:N"))
        assert verdict.kind is AssociationKind.IMMEDIATE
        assert verdict.is_close

    def test_immediate_nm_is_close(self):
        # Paper: immediate relationships carry no ambiguity, even N:M.
        verdict = classify_cardinalities(cards("N:M"))
        assert verdict.kind is AssociationKind.IMMEDIATE
        assert verdict.is_close
        assert verdict.nm_step_positions == (0,)

    def test_transitive_functional_forward(self):
        verdict = classify_cardinalities(cards("1:N", "1:N", "1:N"))
        assert verdict.kind is AssociationKind.TRANSITIVE_FUNCTIONAL
        assert verdict.is_close
        assert str(verdict.composed) == "1:N"

    def test_transitive_functional_backward(self):
        verdict = classify_cardinalities(cards("N:1", "N:1"))
        assert verdict.kind is AssociationKind.TRANSITIVE_FUNCTIONAL
        assert verdict.is_close

    def test_transitive_functional_with_one_to_one(self):
        verdict = classify_cardinalities(cards("1:1", "1:N"))
        assert verdict.is_close

    def test_transitive_nm_via_joint(self):
        verdict = classify_cardinalities(cards("N:1", "1:N"))
        assert verdict.kind is AssociationKind.TRANSITIVE_NM
        assert verdict.is_loose
        assert verdict.loose_joint_positions == (0,)

    def test_transitive_nm_via_nm_step(self):
        verdict = classify_cardinalities(cards("1:N", "N:M"))
        assert verdict.is_loose
        assert verdict.loose_joint_positions == ()
        assert verdict.nm_step_positions == (1,)

    def test_loose_without_joint_or_nm_step(self):
        # 1:N then N:1 composes to N:M with neither reason marker.
        verdict = classify_cardinalities(cards("1:N", "N:1"))
        assert verdict.is_loose
        assert verdict.loose_joint_positions == ()
        assert verdict.nm_step_positions == ()

    def test_loose_joint_count(self):
        verdict = classify_cardinalities(cards("N:1", "1:N", "N:1", "1:N"))
        assert verdict.loose_joint_count == 2

    def test_describe_mentions_kind_and_reasons(self):
        verdict = classify_cardinalities(cards("N:1", "1:N"))
        description = verdict.describe()
        assert "transitive N:M" in description
        assert "loose" in description
        assert "joints at 0" in description


class TestPaperTable1:
    """The classifier reproduces all six rows of Table 1."""

    @pytest.mark.parametrize(
        "sequence, close",
        [
            (("1:N",), True),                      # row 1 department-employee
            (("N:M",), True),                      # row 2 project-employee
            (("1:N", "1:N"), True),                # row 3
            (("1:N", "N:M"), False),               # row 4
            (("N:1", "1:N"), False),               # row 5
            (("1:N", "N:M", "1:N"), False),        # row 6
        ],
    )
    def test_row(self, sequence, close):
        assert classify_cardinalities(cards(*sequence)).is_close is close

    def test_row6_contains_nm_part(self):
        verdict = classify_cardinalities(cards("1:N", "N:M", "1:N"))
        # "it contains a transitive N:M relationship as a part of it".
        assert verdict.nm_step_positions == (1,)
        assert verdict.loose_joint_positions == (1,)


class TestClassifyErPath:
    def test_schema_path_row5(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["PROJECT", "DEPARTMENT", "EMPLOYEE"]
        )
        verdict = classify_er_path(path)
        assert verdict.is_loose
        assert verdict.loose_joint_positions == (0,)

    def test_schema_path_row3(self, er_schema):
        path = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "EMPLOYEE", "DEPENDENT"]
        )
        assert classify_er_path(path).is_close

    def test_direction_does_not_change_closeness(self, er_schema):
        forward = ERPath.from_relationships(
            er_schema, ["DEPARTMENT", "EMPLOYEE", "DEPENDENT"]
        )
        backward = forward.reversed()
        assert classify_er_path(forward).is_close == \
            classify_er_path(backward).is_close


class TestInvariants:
    """Structural invariants relating the taxonomy's pieces."""

    ALL = ("1:1", "1:N", "N:1", "N:M")

    def test_functional_composition_never_has_joints(self):
        from itertools import product

        for sequence in product(self.ALL, repeat=3):
            verdict = classify_cardinalities(cards(*sequence))
            if verdict.composed.is_functional:
                assert verdict.loose_joint_positions == ()

    def test_joint_implies_nm_composition(self):
        from itertools import product

        for sequence in product(self.ALL, repeat=3):
            verdict = classify_cardinalities(cards(*sequence))
            if verdict.loose_joint_positions:
                assert verdict.composed.is_many_to_many

    def test_close_iff_immediate_or_functional(self):
        from itertools import product

        for length in (1, 2, 3):
            for sequence in product(self.ALL, repeat=length):
                verdict = classify_cardinalities(cards(*sequence))
                expected = length == 1 or verdict.composed.is_functional
                assert verdict.is_close is expected
