"""Unit tests for role-qualified keywords (MeanKS-style disambiguation)."""

import pytest

from repro.core.matching import match_keywords, split_role
from repro.core.search import SearchLimits
from repro.errors import QueryError


class TestSplitRole:
    def test_plain_keyword(self):
        assert split_role("xml") == ("xml", None)

    def test_qualified_keyword(self):
        assert split_role("xml@PROJECT") == ("xml", "PROJECT")

    def test_whitespace_stripped(self):
        assert split_role("  xml@PROJECT ") == ("xml", "PROJECT")

    def test_missing_term_rejected(self):
        with pytest.raises(QueryError):
            split_role("@PROJECT")

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            split_role("xml@")

    def test_double_qualifier_rejected(self):
        with pytest.raises(QueryError):
            split_role("xml@A@B")


class TestQualifiedMatching:
    def test_role_restricts_relation(self, index, company_db):
        matches = match_keywords(index, ("xml@PROJECT",))
        labels = {company_db.tuple(t).label for t in matches[0].tuple_ids}
        assert labels == {"p1", "p2"}

    def test_role_is_case_insensitive(self, index):
        upper = match_keywords(index, ("xml@PROJECT",))
        lower = match_keywords(index, ("xml@project",))
        assert upper[0].tuple_ids == lower[0].tuple_ids

    def test_unqualified_keyword_unchanged(self, index, company_db):
        matches = match_keywords(index, ("xml",))
        labels = {company_db.tuple(t).label for t in matches[0].tuple_ids}
        assert labels == {"d1", "d2", "p1", "p2"}

    def test_postings_filtered_too(self, index):
        matches = match_keywords(index, ("xml@DEPARTMENT",))
        assert all(
            posting.tid.relation == "DEPARTMENT"
            for posting in matches[0].postings
        )

    def test_wrong_role_matches_nothing(self, index):
        matches = match_keywords(index, ("smith@PROJECT",))
        assert matches[0].is_empty

    def test_keyword_keeps_qualified_spelling(self, index):
        matches = match_keywords(index, ("XML@Project",))
        assert matches[0].keyword == "XML@Project"


class TestQualifiedSearch:
    def test_role_narrows_the_answer_set(self, engine):
        unqualified = engine.search(
            "Smith XML", limits=SearchLimits(max_rdb_length=3)
        )
        qualified = engine.search(
            "Smith XML@PROJECT", limits=SearchLimits(max_rdb_length=3)
        )
        assert 0 < len(qualified) < len(unqualified)

    def test_qualified_answers_end_in_the_role_relation(self, engine):
        results = engine.search(
            "Smith XML@PROJECT", limits=SearchLimits(max_rdb_length=3)
        )
        for result in results:
            relations = {tid.relation for tid in result.answer.tuple_ids()}
            assert "PROJECT" in relations

    def test_annotation_shows_qualified_keyword(self, engine):
        results = engine.search(
            "Smith XML@PROJECT", limits=SearchLimits(max_rdb_length=3)
        )
        assert any("XML@PROJECT" in r.answer.render() for r in results)

    def test_department_role_excludes_projects(self, engine):
        results = engine.search(
            "Smith XML@DEPARTMENT", limits=SearchLimits(max_rdb_length=2)
        )
        rendered = {r.answer.render() for r in results}
        assert "e1(Smith) – d1(XML@DEPARTMENT)" in rendered
        assert not any("p1" in text or "p2" in text for text in rendered)
