"""Unit tests for the KeywordSearchEngine facade."""

import pytest

from repro.core.connections import Connection
from repro.core.engine import KeywordSearchEngine
from repro.core.ranking import RdbLengthRanker
from repro.core.search import JoiningNetwork, SearchLimits, SingleTupleAnswer


class TestSearchBasics:
    def test_two_keyword_query_returns_connections(self, engine):
        results = engine.search("Smith XML")
        assert results
        assert all(
            isinstance(r.answer, (Connection, SingleTupleAnswer))
            for r in results
        )

    def test_results_are_ranked(self, engine):
        results = engine.search("Smith XML")
        scores = [r.score for r in results]
        assert scores == sorted(scores)
        assert [r.rank for r in results] == list(range(1, len(results) + 1))

    def test_closeness_default_puts_close_first(self, engine):
        # Paths are oriented from the first keyword's matches, so the query
        # "Smith XML" renders Smith-side first (the paper prints the same
        # connections from the XML side; see repro.experiments.tables).
        results = engine.search("Smith XML", limits=SearchLimits(max_rdb_length=3))
        best = {r.answer.render() for r in results[:3]}
        assert best == {
            "e1(Smith) – d1(XML)",
            "e1(Smith) – w_f1 – p1(XML)",
            "e2(Smith) – d2(XML)",
        }

    def test_top_k(self, engine):
        results = engine.search("Smith XML", top_k=2)
        assert len(results) == 2

    def test_unmatched_keyword_gives_empty_results(self, engine):
        assert engine.search("Smith unicorn") == []

    def test_single_keyword_returns_matching_tuples(self, engine, company_db):
        results = engine.search("XML")
        labels = {
            company_db.tuple(r.answer.tid).label for r in results
        }
        assert labels == {"d1", "d2", "p1", "p2"}

    def test_three_keywords_return_networks(self, engine):
        results = engine.search(
            "Smith Alice Cs", limits=SearchLimits(max_tuples=5)
        )
        assert results
        assert all(isinstance(r.answer, JoiningNetwork) for r in results)

    def test_alternate_ranker(self, engine):
        default = engine.search("Smith XML", limits=SearchLimits(max_rdb_length=3))
        by_rdb = engine.search(
            "Smith XML",
            ranker=RdbLengthRanker(),
            limits=SearchLimits(max_rdb_length=3),
        )
        assert [r.answer.render() for r in default] != \
            [r.answer.render() for r in by_rdb]

    def test_match_without_search(self, engine, company_db):
        matches = engine.match("Smith")
        labels = {company_db.tuple(t).label for t in matches[0].tuple_ids}
        assert labels == {"e1", "e2"}


class TestExplain:
    def test_explains_connection(self, engine):
        results = engine.search("Smith XML", limits=SearchLimits(max_rdb_length=3))
        text = engine.explain(results[0])
        assert "verdict" in text
        assert "rdb length" in text

    def test_explains_loose_connection_instance_level(self, engine):
        results = engine.search("Smith XML", limits=SearchLimits(max_rdb_length=3))
        loose = next(
            r for r in results
            if isinstance(r.answer, Connection) and r.answer.verdict().is_loose
        )
        assert "instance level" in engine.explain(loose)

    def test_explains_network(self, engine):
        results = engine.search("Smith Alice Cs", limits=SearchLimits(max_tuples=5))
        assert "tuples" in engine.explain(results[0])


class TestRebuild:
    def test_rebuild_sees_new_tuples(self, company_db):
        engine = KeywordSearchEngine(company_db)
        assert engine.search("Zubrowka") == []
        company_db.insert(
            "EMPLOYEE",
            {"SSN": "e9", "L_NAME": "Zubrowka", "S_NAME": "Ada", "D_ID": "d1"},
        )
        engine.rebuild()
        results = engine.search("Zubrowka")
        assert len(results) == 1

    def test_rebuild_refreshes_graph(self, company_db):
        engine = KeywordSearchEngine(company_db)
        before = engine.data_graph.number_of_nodes()
        company_db.insert("DEPARTMENT", {"ID": "d9", "D_NAME": "new"})
        engine.rebuild()
        assert engine.data_graph.number_of_nodes() == before + 1


class TestDeterminism:
    def test_repeated_searches_identical(self, engine):
        first = [r.answer.render() for r in engine.search("Smith XML")]
        second = [r.answer.render() for r in engine.search("Smith XML")]
        assert first == second

    def test_fresh_engine_identical(self, company_db):
        from repro.datasets.company import build_company_database

        one = KeywordSearchEngine(company_db).search("Smith XML")
        other = KeywordSearchEngine(build_company_database()).search("Smith XML")
        assert [r.answer.render() for r in one] == \
            [r.answer.render() for r in other]


class TestSearchBatch:
    def test_batch_matches_individual_searches(self, engine):
        queries = ["Smith XML", "John Smith", "Smith XML"]
        batched = engine.search_batch(queries)
        assert len(batched) == 3
        for query, results in zip(queries, batched):
            individual = engine.search(query)
            assert [(r.render(), r.score) for r in results] == [
                (r.render(), r.score) for r in individual
            ]

    def test_duplicate_queries_share_result_lists(self, engine):
        batched = engine.search_batch(["Smith XML", "Smith XML"])
        assert batched[0] is batched[1]

    def test_empty_batch(self, engine):
        assert engine.search_batch([]) == []

    def test_batch_passes_options_through(self, engine):
        batched = engine.search_batch(
            ["Smith XML"], ranker=RdbLengthRanker(), top_k=2
        )
        assert len(batched[0]) == 2
        assert batched[0][0].score == engine.search(
            "Smith XML", ranker=RdbLengthRanker(), top_k=2
        )[0].score

    def test_batch_warms_traversal_cache(self, company_db):
        engine = KeywordSearchEngine(company_db)
        engine.search_batch(["Smith XML", "John XML"])
        # The second query reuses the distance maps of the shared targets.
        assert engine.traversal_cache.hits > 0


class TestSearchStream:
    def test_stream_matches_search(self, engine):
        streamed = list(engine.search_stream("Smith XML"))
        materialised = engine.search("Smith XML")
        assert [(r.render(), r.score, r.rank) for r in streamed] == [
            (r.render(), r.score, r.rank) for r in materialised
        ]

    def test_stream_with_top_k(self, engine):
        results = list(engine.search_stream("Smith XML", top_k=2))
        assert len(results) == 2
        assert [r.rank for r in results] == [1, 2]

    def test_stream_or_semantics(self, engine):
        streamed = list(engine.search_stream("Smith unicorn", semantics="or"))
        assert streamed
        assert [(r.render(), r.score) for r in streamed] == [
            (r.render(), r.score)
            for r in engine.search("Smith unicorn", semantics="or")
        ]

    def test_stream_empty_query_result(self, engine):
        assert list(engine.search_stream("unicorn rainbow")) == []


class TestPlanEntryPoint:
    def test_plan_describes_query(self, engine):
        plan = engine.plan("Smith XML", top_k=3)
        assert not plan.is_empty
        assert "top-3" in plan.describe()

    def test_plan_validates_semantics(self, engine):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            engine.plan("Smith XML", semantics="xor")

    def test_last_stats_tracks_runs(self, engine):
        results = engine.search("Smith XML")
        assert engine.last_stats.emitted == len(results)

    def test_batch_aggregates_stats_and_sharing(self, engine):
        engine.search_batch(["Smith XML", "SMITH xml"])
        # Distinct texts, same keyword-tuple pairs: the second query's
        # enumeration sub-plans are served from the first query's streams.
        assert engine.last_shared.hits > 0
        assert engine.last_stats.emitted > 0


class TestFastTraversalFlag:
    def test_flag_defaults_on(self, engine):
        assert engine.use_fast_traversal is True

    def test_slow_engine_gives_same_answers(self, company_db):
        fast = KeywordSearchEngine(company_db)
        slow = KeywordSearchEngine(company_db, use_fast_traversal=False)
        assert [(r.render(), r.score) for r in fast.search("Smith XML")] == [
            (r.render(), r.score) for r in slow.search("Smith XML")
        ]
