"""Unit tests for result presentation (paper §4) and OR semantics."""

import pytest

from repro.core.presentation import (
    filter_instance_close,
    group_results,
    larger_context,
)
from repro.core.search import SearchLimits
from repro.errors import QueryError


@pytest.fixture
def results(engine):
    return engine.search("XML Smith", limits=SearchLimits(max_rdb_length=3))


class TestGroupResults:
    def test_three_groups_on_paper_query(self, results):
        groups = group_results(results)
        labels = [group.label for group in groups]
        assert labels == ["close", "close, larger context", "loose"]

    def test_close_group_contains_the_three_best(self, results):
        groups = {group.label: group for group in group_results(results)}
        rendered = {r.answer.render() for r in groups["close"].results}
        assert rendered == {
            "d1(XML) – e1(Smith)",
            "p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – e2(Smith)",
        }

    def test_larger_context_group_is_instance_corroborated(self, results):
        # Paper §3: "in an instance level, also connections 3 and 4 have a
        # close association" - so 3, 4 and 7 land in the middle group.
        groups = {group.label: group for group in group_results(results)}
        rendered = {
            r.answer.render()
            for r in groups["close, larger context"].results
        }
        assert rendered == {
            "p1(XML) – d1(XML) – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        }

    def test_loose_group_is_connection_6_only(self, results):
        # Barbara Smith never works on p2: connection 6 stays loose even at
        # the instance level.
        groups = {group.label: group for group in group_results(results)}
        rendered = {r.answer.render() for r in groups["loose"].results}
        assert rendered == {"p2(XML) – d2(XML) – e2(Smith)"}

    def test_groups_preserve_order(self, results):
        for group in group_results(results):
            ranks = [result.rank for result in group.results]
            assert ranks == sorted(ranks)

    def test_empty_groups_omitted(self, engine):
        results = engine.search("XML Smith", limits=SearchLimits(max_rdb_length=1))
        labels = [group.label for group in group_results(results)]
        assert labels == ["close"]

    def test_describe(self, results):
        group = group_results(results)[0]
        description = group.describe()
        assert description.startswith("close (")
        assert "d1(XML)" in description


class TestLargerContext:
    def test_selects_corroborated_long_answers(self, results):
        # Connections 3, 4 and 7 keep their association at the instance
        # level (paper §3); connection 6 does not and is excluded.
        selected = {r.answer.render() for r in larger_context(results)}
        assert selected == {
            "p1(XML) – d1(XML) – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        }

    def test_without_instance_corroboration(self, results):
        selected = larger_context(results, require_instance_close=False)
        # Only schema-close long answers remain - none at er>=2 here are
        # schema-close except... 4 and 7 are loose, so nothing qualifies.
        assert {r.answer.render() for r in selected} == set()

    def test_min_er_length_threshold(self, results):
        everything = larger_context(results, min_er_length=1)
        assert len(everything) >= 5  # all close + corroborated loose


class TestFilterInstanceClose:
    def test_drops_uncorroborated(self, results):
        kept = {r.answer.render() for r in filter_instance_close(results)}
        assert "p2(XML) – d2(XML) – e2(Smith)" not in kept
        assert "p1(XML) – d1(XML) – e1(Smith)" in kept  # corroborated

    def test_keeps_all_close(self, results):
        kept = {r.answer.render() for r in filter_instance_close(results)}
        assert "d1(XML) – e1(Smith)" in kept
        assert "p1(XML) – w_f1 – e1(Smith)" in kept


class TestOrSemantics:
    def test_unmatched_keyword_does_not_kill_query(self, engine):
        results = engine.search("Smith unicorn", semantics="or")
        assert results
        rendered = {r.answer.render() for r in results}
        assert "e1(Smith)" in rendered

    def test_all_unmatched_yields_empty(self, engine):
        assert engine.search("unicorn rainbow", semantics="or") == []

    def test_coverage_major_ordering(self, engine):
        results = engine.search(
            "XML Smith", semantics="or", limits=SearchLimits(max_rdb_length=3)
        )
        coverages = []
        for result in results:
            coverages.append(-result.score[0])
        assert coverages == sorted(coverages, reverse=True)

    def test_two_keyword_or_includes_singles(self, engine):
        results = engine.search(
            "XML Smith", semantics="or", limits=SearchLimits(max_rdb_length=3)
        )
        rendered = {r.answer.render() for r in results}
        assert "d1(XML)" in rendered          # single matching only XML
        assert "e1(Smith) – d1(XML)" in rendered or \
            "d1(XML) – e1(Smith)" in rendered

    def test_connections_outrank_singles(self, engine):
        results = engine.search(
            "XML Smith", semantics="or", limits=SearchLimits(max_rdb_length=3)
        )
        # The first results cover both keywords.
        assert results[0].score[0] == -2.0

    def test_three_keyword_or(self, engine):
        results = engine.search("Smith Alice unicorn", semantics="or")
        assert results
        best_coverage = -results[0].score[0]
        assert best_coverage == 2  # Smith+Alice connect; unicorn matches nothing

    def test_invalid_semantics_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search("Smith", semantics="xor")

    def test_and_unchanged_by_default(self, engine):
        assert engine.search("Smith unicorn") == []
