"""Unit tests for TF-IDF content scoring and the combined ranker."""

import pytest

from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.ranking import rank_connections
from repro.core.scoring import CombinedRanker, TfIdfScorer, content_score
from repro.relational.database import TupleId


@pytest.fixture
def scorer(index):
    return TfIdfScorer(index)


def tid(relation, *key):
    return TupleId(relation, tuple(key))


class TestTfIdfScorer:
    def test_absent_keyword_scores_zero(self, scorer):
        assert scorer.score("unicorn", tid("EMPLOYEE", "e1")) == 0.0

    def test_absent_tuple_scores_zero(self, scorer):
        assert scorer.score("xml", tid("EMPLOYEE", "e3")) == 0.0

    def test_present_keyword_scores_positive(self, scorer):
        assert scorer.score("xml", tid("DEPARTMENT", "d1")) > 0.0

    def test_rarer_terms_have_higher_idf(self, scorer):
        # 'databases' occurs in one tuple, 'xml' in four.
        assert scorer.idf("databases") > scorer.idf("xml")

    def test_idf_of_unknown_term_is_maximal(self, scorer):
        assert scorer.idf("unicorn") >= scorer.idf("databases")

    def test_whole_value_boost(self, index):
        boosted = TfIdfScorer(index, whole_value_boost=2.0)
        flat = TfIdfScorer(index, whole_value_boost=1.0)
        # 'Smith' matches L_NAME as a whole value.
        employee = tid("EMPLOYEE", "e1")
        assert boosted.score("smith", employee) == pytest.approx(
            2.0 * flat.score("smith", employee)
        )

    def test_term_frequency_counts_attributes(self, scorer):
        # 'xml' occurs in p2's P_NAME and P_DESCRIPTION.
        assert scorer.term_frequency("xml", tid("PROJECT", "p2")) == 2.0

    def test_multiple_occurrences_score_higher(self, scorer):
        # p2 mentions xml in two attributes; d1 in one.
        p2 = scorer.score("xml", tid("PROJECT", "p2"))
        d1 = scorer.score("xml", tid("DEPARTMENT", "d1"))
        assert p2 > d1


class TestContentScore:
    def test_sums_best_per_keyword(self, scorer, index):
        matches = match_keywords(index, ("XML", "Smith"))
        members = [tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")]
        total = content_score(scorer, members, matches)
        expected = scorer.score("xml", tid("DEPARTMENT", "d1")) + scorer.score(
            "smith", tid("EMPLOYEE", "e1")
        )
        assert total == pytest.approx(expected)

    def test_uncovered_keyword_contributes_zero(self, scorer, index):
        matches = match_keywords(index, ("XML", "Smith"))
        members = [tid("DEPARTMENT", "d1")]  # no Smith tuple
        total = content_score(scorer, members, matches)
        assert total == pytest.approx(scorer.score("xml", tid("DEPARTMENT", "d1")))

    def test_picks_best_tuple_per_keyword(self, scorer, index):
        matches = match_keywords(index, ("XML",))
        members = [tid("DEPARTMENT", "d1"), tid("PROJECT", "p2")]
        total = content_score(scorer, members, matches)
        assert total == pytest.approx(scorer.score("xml", tid("PROJECT", "p2")))


class TestCombinedRanker:
    @pytest.fixture
    def searched(self, engine):
        from repro.core.search import SearchLimits, find_connections

        matches = match_keywords(engine.index, ("XML", "Smith"))
        answers = [
            answer
            for answer in find_connections(
                engine.data_graph, matches, SearchLimits(max_rdb_length=3)
            )
            if isinstance(answer, Connection)
        ]
        return matches, answers

    def test_structure_only_matches_closeness_order(self, scorer, searched):
        from repro.core.ranking import ClosenessRanker

        matches, answers = searched
        combined = CombinedRanker.for_query(scorer, matches, w_content=0.0)
        closeness = rank_connections(answers, ClosenessRanker())
        content_free = rank_connections(answers, combined)
        assert [a.render() for a, __ in closeness] == [
            a.render() for a, __ in content_free
        ]

    def test_content_weight_changes_order(self, scorer, searched):
        matches, answers = searched
        structural = CombinedRanker.for_query(scorer, matches, w_content=0.0)
        content_heavy = CombinedRanker.for_query(
            scorer, matches, w_structure=0.0, w_content=1.0
        )
        first = [a.render() for a, __ in rank_connections(answers, structural)]
        second = [a.render() for a, __ in rank_connections(answers, content_heavy)]
        assert first != second

    def test_content_heavy_prefers_double_xml_paths(self, scorer, searched):
        matches, answers = searched
        content_heavy = CombinedRanker.for_query(
            scorer, matches, w_structure=0.0, w_content=1.0
        )
        ranked = rank_connections(answers, content_heavy)
        # The best content answer must contain an XML-rich project tuple.
        top_render = ranked[0][0].render()
        assert "p2(XML)" in top_render or "p1(XML)" in top_render

    def test_lower_is_better_convention(self, scorer, searched):
        matches, answers = searched
        combined = CombinedRanker.for_query(scorer, matches)
        ranked = rank_connections(answers, combined)
        scores = [score for __, score in ranked]
        assert scores == sorted(scores)
