"""Unit tests for the statistics-backed ambiguity ranker."""

import pytest

from repro.core.connections import Connection
from repro.core.ranking import InstanceAmbiguityRanker, rank_connections
from repro.core.ranking_stats import StatisticalAmbiguityRanker
from repro.relational.statistics import DatabaseStatistics


@pytest.fixture
def ranker(company_db):
    return StatisticalAmbiguityRanker(DatabaseStatistics(company_db))


def connection(data_graph, labels):
    return Connection.from_labels(data_graph, labels)


class TestScoring:
    def test_close_connection_scores_one(self, ranker, data_graph):
        score = ranker.score(connection(data_graph, ["d1", "e1"]))
        assert score[0] == 1.0

    def test_loose_connection_scores_estimate(self, ranker, data_graph):
        # Joint at the department: project fan 1.5 x employee fan 2.0.
        score = ranker.score(connection(data_graph, ["p1", "d1", "e1"]))
        assert score[0] == pytest.approx(3.0)

    def test_estimate_is_uniform_across_joints_of_same_shape(
        self, ranker, data_graph
    ):
        # Exact ranker separates connection 3 (factor 2) from 6 (factor 4);
        # the statistical one sees the same FK pair at both joints and
        # scores them equally - the accuracy trade-off, made visible.
        three = ranker.score(connection(data_graph, ["p1", "d1", "e1"]))
        six = ranker.score(connection(data_graph, ["p2", "d2", "e2"]))
        assert three == six

    def test_exact_ranker_disagrees_on_skew(self, data_graph, company_db):
        exact = InstanceAmbiguityRanker()
        three = exact.score(connection(data_graph, ["p1", "d1", "e1"]))
        six = exact.score(connection(data_graph, ["p2", "d2", "e2"]))
        assert three != six

    def test_loose_joint_free_connections_tie(self, ranker, data_graph):
        a = ranker.score(connection(data_graph, ["d1", "p1", "w_f1", "e1"]))
        assert a[0] == 1.0

    def test_er_length_breaks_ties(self, ranker, data_graph):
        short = ranker.score(connection(data_graph, ["d1", "e1"]))
        long = ranker.score(connection(data_graph, ["d1", "p1", "w_f1", "e1"]))
        assert short < long


class TestAgainstExact:
    def test_same_ranking_on_paper_connections(self, ranker, data_graph):
        """On the paper's data the estimated order equals the exact order
        up to the 3-vs-6 tie the estimate cannot see."""
        labels = {
            1: ["d1", "e1"],
            2: ["p1", "w_f1", "e1"],
            3: ["p1", "d1", "e1"],
            4: ["d1", "p1", "w_f1", "e1"],
            5: ["d2", "e2"],
            6: ["p2", "d2", "e2"],
            7: ["d2", "p3", "w_f2", "e2"],
        }
        connections = {
            n: connection(data_graph, row) for n, row in labels.items()
        }
        reverse = {c: n for n, c in connections.items()}
        estimated = [
            reverse[a]
            for a, __ in rank_connections(connections.values(), ranker)
        ]
        exact = [
            reverse[a]
            for a, __ in rank_connections(
                connections.values(), InstanceAmbiguityRanker()
            )
        ]
        # Both put {1,2,5} first, {4,7} next, {3,6} last.
        assert set(estimated[:3]) == set(exact[:3]) == {1, 2, 5}
        assert set(estimated[3:5]) == set(exact[3:5]) == {4, 7}
        assert set(estimated[5:]) == set(exact[5:]) == {3, 6}
