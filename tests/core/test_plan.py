"""Unit tests for the query plan IR and planner."""

import pytest

from repro.core.matching import match_keywords
from repro.core.plan import (
    Cut,
    Merge,
    NetworkGrowth,
    PairPaths,
    SingleScan,
    lower_bound_for,
    plan_query,
)
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    WeightedRanker,
)
from repro.errors import QueryError


class TestAndPlans:
    def test_single_keyword_plans_a_scan(self, index):
        plan = plan_query(match_keywords(index, ("XML",)))
        assert plan.sources == (SingleScan((0,)),)
        assert plan.merge == Merge(coverage_major=False)
        assert plan.cut == Cut(None)

    def test_two_keywords_plan_pair_paths_with_singles(self, index):
        plan = plan_query(match_keywords(index, ("Smith", "XML")))
        assert plan.sources == (PairPaths(0, 1, include_single_tuples=True),)

    def test_three_keywords_plan_network_growth(self, index):
        plan = plan_query(match_keywords(index, ("Smith", "Alice", "Cs")))
        assert plan.sources == (NetworkGrowth((0, 1, 2)),)

    def test_unmatched_keyword_empties_the_plan(self, index):
        plan = plan_query(match_keywords(index, ("Smith", "unicorn")))
        assert plan.is_empty

    def test_top_k_lands_in_the_cut(self, index):
        plan = plan_query(match_keywords(index, ("Smith", "XML")), top_k=3)
        assert plan.cut == Cut(3)

    def test_keywords_recorded(self, index):
        plan = plan_query(match_keywords(index, ("Smith", "XML")))
        assert plan.keywords == ("Smith", "XML")
        assert plan.semantics == "and"


class TestOrPlans:
    def test_or_plans_scan_pairs_and_network(self, index):
        matches = match_keywords(index, ("Smith", "Alice", "Cs"))
        plan = plan_query(matches, semantics="or")
        assert plan.sources == (
            SingleScan((0, 1, 2)),
            PairPaths(0, 1, include_single_tuples=False),
            PairPaths(0, 2, include_single_tuples=False),
            PairPaths(1, 2, include_single_tuples=False),
            NetworkGrowth((0, 1, 2)),
        )
        assert plan.merge == Merge(coverage_major=True)

    def test_or_drops_unmatched_keywords(self, index):
        matches = match_keywords(index, ("Smith", "unicorn", "XML"))
        plan = plan_query(matches, semantics="or")
        assert plan.sources == (
            SingleScan((0, 2)),
            PairPaths(0, 2, include_single_tuples=False),
        )

    def test_or_single_populated_keyword_scans_only(self, index):
        matches = match_keywords(index, ("Smith", "unicorn"))
        plan = plan_query(matches, semantics="or")
        assert plan.sources == (SingleScan((0,)),)

    def test_or_nothing_populated_is_empty(self, index):
        matches = match_keywords(index, ("unicorn", "gryphon"))
        plan = plan_query(matches, semantics="or")
        assert plan.is_empty


class TestValidation:
    def test_bad_semantics(self, index):
        with pytest.raises(QueryError):
            plan_query(match_keywords(index, ("XML",)), semantics="xor")

    def test_no_matches(self):
        with pytest.raises(QueryError):
            plan_query(())


class TestDescribe:
    def test_describe_lists_every_stage(self, index):
        plan = plan_query(
            match_keywords(index, ("Smith", "XML")), top_k=5
        )
        text = plan.describe()
        assert "match" in text
        assert "paths" in text
        assert "rank" in text
        assert "top-5" in text

    def test_describe_or_mentions_coverage(self, index):
        plan = plan_query(
            match_keywords(index, ("Smith", "XML")), semantics="or"
        )
        assert "coverage-major" in plan.describe()


class TestLowerBounds:
    """The bound table now feeds every plan, not just two-keyword top-k."""

    def test_rdb_bound_is_exact(self):
        assert lower_bound_for(RdbLengthRanker(), 3) == (3.0,)

    def test_er_bound_halves(self):
        assert lower_bound_for(ErLengthRanker(), 4) == (2.0,)
        assert lower_bound_for(ErLengthRanker(), 5) == (3.0,)

    def test_closeness_bound(self):
        assert lower_bound_for(ClosenessRanker(), 3) == (0.0, 2.0)

    def test_unbounded_rankers(self):
        assert lower_bound_for(InstanceAmbiguityRanker(), 3) is None
        assert lower_bound_for(WeightedRanker(), 3) is None

    def test_zero_length_bound(self):
        # Singles (length 0) and one-tuple networks bound at zero.
        assert lower_bound_for(RdbLengthRanker(), 0) == (0.0,)
        assert lower_bound_for(ClosenessRanker(), 0) == (0.0, 0.0)

    def test_bounds_hold_for_networks(self, engine):
        """A joining network's score never beats its length's bound."""
        results = engine.search("Smith Alice Cs")
        for ranker in (RdbLengthRanker(), ErLengthRanker(), ClosenessRanker()):
            for result in results:
                answer = result.answer
                bound = lower_bound_for(ranker, answer.rdb_length)
                assert ranker.score(answer) >= bound


class TestHotClassesStaySlotted:
    """Micro-assert: the hot pipeline classes must not grow __dict__.

    Per-instance dicts on these classes cost memory and attribute-lookup
    time on every DFS push / stream item / plan node; a refactor that
    silently drops ``__slots__`` (e.g. re-declaring a dataclass without
    ``slots=True``) should fail loudly here.
    """

    def test_plan_ir_nodes(self):
        from repro.core.plan import Cut, Merge

        for instance in (
            SingleScan((0,)),
            PairPaths(0, 1),
            NetworkGrowth((0, 1, 2)),
            Merge(),
            Cut(3),
        ):
            assert not hasattr(instance, "__dict__"), type(instance).__name__

    def test_query_plan_is_slotted(self, index):
        plan = plan_query(match_keywords(index, ("smith", "xml")))
        assert not hasattr(plan, "__dict__")

    def test_traversal_and_executor_classes(self):
        from repro.core.executor import ExecutionStats, SearchResult
        from repro.graph.fast_traversal import SharedStream
        from repro.graph.traversal import TuplePathStep
        from repro.relational.database import TupleId

        step = TuplePathStep(
            TupleId("A", ("1",)), TupleId("B", ("2",)), "fk", {}
        )
        stream = SharedStream(lambda: iter(()))
        stats = ExecutionStats()
        result = SearchResult(answer=None, score=(0.0,), rank=1)
        for instance in (step, stream, stats, result):
            assert not hasattr(instance, "__dict__"), type(instance).__name__
