"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSearchCommand:
    def test_default_database_search(self):
        code, output = run("search", "Smith XML")
        assert code == 0
        assert "e1(Smith)" in output
        assert "d1(XML)" in output

    def test_ranker_choice_changes_order(self):
        __, closeness = run("search", "Smith XML", "--ranker", "closeness")
        __, rdb = run("search", "Smith XML", "--ranker", "rdb")
        assert closeness != rdb

    def test_top_k(self):
        code, output = run("search", "Smith XML", "--top", "2")
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 3  # two answers plus the pushdown report
        assert lines[-1].startswith("# top-2 pushdown: enumerated ")

    def test_top_k_report_counts_skipped_candidates(self):
        __, output = run("search", "Smith XML", "--top", "1", "--max-rdb", "4")
        report = output.strip().splitlines()[-1]
        assert "candidates (skipped" in report
        enumerated = int(report.split("enumerated ")[1].split(" ")[0])
        total = int(report.split(" of ")[1].split(" ")[0])
        assert enumerated < total

    def test_top_k_report_unbounded_ranker(self):
        __, output = run(
            "search", "Smith XML", "--top", "2", "--ranker", "ambiguity"
        )
        assert "no pushdown (ranker has no score lower bound)" in output

    def test_top_k_report_survives_budget_overrun(self):
        """Counting full enumeration may hit a budget the lazy top-k
        run skipped — the report must say so, not crash."""
        import argparse

        from repro.cli import _report_pushdown
        from repro.core.engine import KeywordSearchEngine
        from repro.core.ranking import ClosenessRanker
        from repro.core.search import SearchLimits
        from repro.datasets.synthetic import SyntheticConfig, generate_company_like
        from repro.datasets.workload import WorkloadConfig, generate_workload

        database = generate_company_like(
            SyntheticConfig(
                departments=8, projects_per_department=3,
                employees_per_department=8, works_on_per_employee=3, seed=17,
            )
        )
        query = generate_workload(
            database,
            WorkloadConfig(queries=1, keywords_per_query=2,
                           matches_per_keyword=3, seed=13),
        )[0].text
        engine = KeywordSearchEngine(database)
        limits = SearchLimits(max_rdb_length=6, max_paths_per_pair=5)
        ranker = ClosenessRanker()
        results = engine.search(query, ranker=ranker, limits=limits, top_k=2)
        assert results  # the lazy top-k never reaches the budget
        out = io.StringIO()
        args = argparse.Namespace(query=query, top=2, semantics="and")
        _report_pushdown(engine, args, ranker, limits, out)
        assert "full enumeration exceeds the search budget" in out.getvalue()

    def test_explain_mode(self):
        code, output = run("search", "Smith XML", "--explain")
        assert code == 0
        assert "verdict" in output

    def test_no_answers_exit_code(self):
        code, output = run("search", "unicorn rainbow")
        assert code == 1
        assert "no answers" in output

    def test_max_rdb_bound(self):
        __, short = run("search", "Smith XML", "--max-rdb", "1")
        __, longer = run("search", "Smith XML", "--max-rdb", "3")
        assert len(short.splitlines()) < len(longer.splitlines())

    def test_or_semantics_flag(self):
        code, output = run("search", "Smith unicorn", "--semantics", "or")
        assert code == 0
        assert "e1(Smith)" in output

    def test_group_flag(self):
        code, output = run("search", "Smith XML", "--group")
        assert code == 0
        assert "close (" in output
        assert "loose (" in output

    def test_role_qualified_query(self):
        code, output = run("search", "Smith XML@PROJECT")
        assert code == 0
        assert "XML@PROJECT" in output
        assert "d1(XML)" not in output


class TestReproduceCommand:
    def test_reproduce_runs_everything(self):
        code, output = run("reproduce")
        assert code == 0
        assert "Table 1" in output
        assert "Table 2" in output
        assert "Table 3" in output
        assert "Claim C1" in output
        assert "Claim C2" in output
        assert "lost (3, 4, 6, 7)" in output


class TestAnalyzeCommand:
    def test_analyze_company(self):
        code, output = run("analyze")
        assert code == 0
        assert "DEPARTMENT -- EMPLOYEE: both" in output

    def test_max_length_flag(self):
        __, short = run("analyze", "--max-length", "1")
        __, longer = run("analyze", "--max-length", "3")
        assert len(longer) > len(short)


class TestMtjntCommand:
    def test_paper_query(self):
        code, output = run("mtjnt", "Smith XML")
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 3
        assert "{d1, e1}" in output

    def test_no_networks_exit_code(self):
        code, output = run("mtjnt", "unicorn rainbow")
        assert code == 1


class TestGenerateCommand:
    def test_generate_and_reuse(self, tmp_path):
        path = tmp_path / "db.json"
        code, output = run("generate", "--departments", "2", "--out", str(path))
        assert code == 0
        assert path.exists()
        code, output = run("--db", str(path), "search", "project")
        assert code == 0

    def test_generated_size_scales(self, tmp_path):
        small = tmp_path / "small.json"
        large = tmp_path / "large.json"
        __, small_out = run("generate", "--departments", "2", "--out", str(small))
        __, large_out = run("generate", "--departments", "8", "--out", str(large))
        small_count = int(small_out.split()[1])
        large_count = int(large_out.split()[1])
        assert large_count > small_count


class TestBatchFlag:
    def test_batch_answers_every_query(self):
        code, output = run("search", "Smith XML; John Smith", "--batch")
        assert code == 0
        assert "== Smith XML ==" in output
        assert "== John Smith ==" in output
        assert "e1(Smith)" in output

    def test_batch_matches_single_runs(self):
        __, batched = run("search", "Smith XML; John Smith", "--batch")
        __, first = run("search", "Smith XML")
        __, second = run("search", "John Smith")
        body = [
            line for line in batched.splitlines() if not line.startswith("==")
        ]
        assert body == (first + second).splitlines()

    def test_batch_reports_empty_queries(self):
        code, output = run("search", "Smith XML; unicorn rainbow", "--batch")
        assert code == 0
        assert "no answers" in output

    def test_batch_all_empty_exit_code(self):
        code, __ = run("search", "unicorn rainbow; gryphon", "--batch")
        assert code == 1

    def test_slow_flag_same_answers(self):
        __, fast = run("search", "Smith XML")
        __, slow = run("search", "Smith XML", "--slow")
        assert fast == slow

    def test_batch_only_separators_reports_no_queries(self):
        code, output = run("search", ";;;", "--batch")
        assert code == 1
        assert "no queries" in output


class TestStreamFlag:
    def test_stream_matches_plain_search(self):
        __, plain = run("search", "Smith XML")
        __, streamed = run("search", "Smith XML", "--stream")
        assert streamed == plain

    def test_stream_with_top_k(self):
        code, output = run("search", "Smith XML", "--stream", "--top", "2")
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("# top-2 pushdown: ")

    def test_stream_no_answers_exit_code(self):
        code, output = run("search", "unicorn rainbow", "--stream")
        assert code == 1
        assert "no answers" in output

    def test_stream_explain(self):
        code, output = run("search", "Smith XML", "--stream", "--explain")
        assert code == 0
        assert "verdict" in output

    def test_stream_rejects_batch(self):
        code, output = run("search", "Smith XML; John Smith",
                           "--batch", "--stream")
        assert code == 2
        assert "--stream cannot be combined" in output

    def test_stream_rejects_group(self):
        code, output = run("search", "Smith XML", "--group", "--stream")
        assert code == 2

    def test_stream_slow_core_same_answers(self):
        __, fast = run("search", "Smith XML", "--stream", "--top", "3")
        __, slow = run("search", "Smith XML", "--stream", "--top", "3",
                       "--slow")
        assert fast == slow


class TestMutationsFlag:
    def write_batches(self, tmp_path):
        import json

        path = tmp_path / "mutations.json"
        path.write_text(json.dumps([
            [
                {"op": "insert", "relation": "DEPENDENT",
                 "values": {"ID": "t9", "ESSN": "e1",
                            "DEPENDENT_NAME": "Smith"}},
            ],
            [
                {"op": "update", "relation": "DEPARTMENT", "key": ["d2"],
                 "values": {"D_DESCRIPTION": "XML retrieval lab"}},
                {"op": "delete", "relation": "DEPENDENT", "key": ["t9"]},
            ],
        ]))
        return str(path)

    def test_replay_reports_live_summary(self, tmp_path):
        code, output = run(
            "search", "Smith XML", "--mutations", self.write_batches(tmp_path)
        )
        assert code == 0
        assert "# live: 2 batches" in output
        assert "engine version 2" in output
        assert "answer cache" in output

    def test_replay_results_match_fresh_engine(self, tmp_path):
        from repro.core.engine import KeywordSearchEngine
        from repro.datasets.company import build_company_database
        from repro.live.changes import load_mutation_batches

        from repro.core.search import SearchLimits

        path = self.write_batches(tmp_path)
        code, output = run("search", "Smith XML", "--mutations", path)
        database = build_company_database()
        for batch in load_mutation_batches(path):
            from repro.live.changes import apply_to_database

            apply_to_database(database, batch)
        expected = KeywordSearchEngine(database).search(
            "Smith XML", limits=SearchLimits(max_rdb_length=3)
        )
        for result in expected:
            assert result.answer.render() in output

    def test_incompatible_with_batch(self, tmp_path):
        code, output = run(
            "search", "Smith XML; Brown CS", "--batch",
            "--mutations", self.write_batches(tmp_path),
        )
        assert code == 2
        assert "--mutations" in output


class TestSnapshotCommand:
    def test_save_then_load_reports_state(self, tmp_path):
        path = str(tmp_path / "company.snap")
        code, output = run("snapshot", "save", path, "--shards", "2")
        assert code == 0
        assert "graph nodes" in output and "CSR entries" in output
        assert "shards:" in output
        code, output = run("snapshot", "load", path)
        assert code == 0
        assert "verified" in output
        assert "2 shards" in output

    def test_load_can_answer_a_query(self, tmp_path):
        path = str(tmp_path / "company.snap")
        run("snapshot", "save", path)
        code, output = run("snapshot", "load", path, "--query", "Smith XML")
        assert code == 0
        assert "e1(Smith)" in output

    def test_load_rejects_corruption(self, tmp_path):
        import pytest

        from repro.errors import SnapshotError

        path = tmp_path / "company.snap"
        run("snapshot", "save", str(path))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            run("snapshot", "load", str(path))

    def test_search_from_snapshot(self, tmp_path):
        path = str(tmp_path / "company.snap")
        run("snapshot", "save", path)
        __, direct = run("search", "Smith XML")
        code, from_snapshot = run("search", "Smith XML", "--snapshot", path)
        assert code == 0
        assert from_snapshot == direct

    def test_snapshot_and_db_are_exclusive(self, tmp_path):
        path = str(tmp_path / "company.snap")
        run("snapshot", "save", path)
        code, output = run(
            "--db", "whatever.json", "search", "x", "--snapshot", path
        )
        assert code == 2
        assert "mutually exclusive" in output


class TestParallelFlags:
    def test_jobs_requires_batch(self):
        code, output = run("search", "Smith XML", "--jobs", "2")
        assert code == 2
        assert "--jobs needs --batch" in output

    def test_batch_with_jobs_matches_serial(self):
        __, serial = run("search", "Smith XML; Brown CS", "--batch")
        code, parallel = run(
            "search", "Smith XML; Brown CS", "--batch", "--jobs", "2",
            "--shards", "2",
        )
        assert code == 0
        assert parallel.startswith(serial)
        assert "# parallel: 2 snapshot workers" in parallel

    def test_sharded_search_matches_plain(self):
        __, plain = run("search", "Smith XML")
        __, sharded = run("search", "Smith XML", "--shards", "3")
        assert sharded == plain


class TestHelpGrouping:
    def test_execution_options_are_grouped(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "search", "--help"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "execution:" in result.stdout
        section = result.stdout.split("execution:")[1]
        for flag in ("--core", "--stream", "--jobs", "--shards", "--snapshot"):
            assert flag in section


class TestMainModule:
    def test_python_dash_m_repro_smoke(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "snapshot" in result.stdout

    def test_python_dash_m_repro_runs_a_query(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "search", "Smith XML", "--top", "1"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "e1(Smith)" in result.stdout


class TestObservabilityFlags:
    def test_analyze_renders_per_node_table(self):
        code, output = run("search", "Smith XML", "--analyze")
        assert code == 0
        lines = output.splitlines()
        assert lines[0].startswith("EXPLAIN ANALYZE  query='Smith XML'")
        assert any(line.startswith("match") for line in lines)
        assert any(line.startswith("total") for line in lines)

    def test_analyze_rejects_batch(self):
        code, output = run("search", "a; b", "--analyze", "--batch")
        assert code == 2
        assert "--analyze answers one query on its own" in output

    def test_json_carries_stats(self):
        import json

        code, output = run("search", "Smith XML", "--json")
        assert code == 0
        doc = json.loads(output)
        assert doc["results"][0]["rank"] == 1
        assert doc["stats"]["candidates"] >= len(doc["results"])
        assert "trace" not in doc  # tracing was off

    def test_json_batch_groups_per_query(self):
        import json

        code, output = run("search", "Smith XML; Brown CS", "--batch",
                           "--json")
        assert code == 0
        doc = json.loads(output)
        assert [entry["query"] for entry in doc["results"]] == [
            "Smith XML", "Brown CS"
        ]
        assert doc["stats"]["emitted"] >= 1

    def test_trace_writes_jsonl_and_adds_summary(self, tmp_path):
        import json

        target = tmp_path / "trace.jsonl"
        code, output = run("search", "Smith XML", "--json",
                           "--trace", str(target))
        assert code == 0
        body, footer = output.rsplit("}\n", 1)
        doc = json.loads(body + "}")
        assert doc["trace"]["root"] == "query"
        assert doc["trace"]["spans"] >= 3
        assert f"# trace: {target}" in footer
        records = [json.loads(line) for line in target.read_text().splitlines()]
        assert records[0]["path"] == "query"
        assert any(r["name"] == "executor.execute" for r in records)
        from repro.obs import trace as obs_trace

        assert not obs_trace.ENABLED  # flag restored after the command

    def test_stats_command_prints_registry_report(self):
        code, output = run("stats")
        assert code == 0
        assert output.startswith("== repro stats — 3 queries ==")
        assert "executor.runs" in output
        assert "result_cache.misses" in output
        from repro.obs import metrics as obs_metrics

        assert not obs_metrics.ENABLED
        obs_metrics.REGISTRY.reset()

    def test_stats_custom_db_requires_query(self, tmp_path):
        code, output = run("--db", str(tmp_path / "x.json"), "stats")
        assert code == 2
        assert "stats needs QUERY" in output

    def test_stats_explicit_queries(self, tmp_path):
        db = tmp_path / "db.json"
        run("generate", "--departments", "2", "--out", str(db))
        code, output = run("--db", str(db), "stats", "kwx; kwy")
        assert code == 0
        assert "2 queries" in output
        from repro.obs import metrics as obs_metrics

        obs_metrics.REGISTRY.reset()
