"""Unit tests for query parsing and keyword matching."""

import pytest

from repro.core.matching import match_keywords, parse_query
from repro.errors import QueryError


class TestParseQuery:
    def test_splits_on_whitespace(self):
        assert parse_query("Smith XML") == ("Smith", "XML")

    def test_collapses_case_insensitive_duplicates(self):
        assert parse_query("XML xml Xml") == ("XML",)

    def test_preserves_first_spelling(self):
        assert parse_query("xml XML") == ("xml",)

    def test_preserves_order(self):
        assert parse_query("b a c") == ("b", "a", "c")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_multiline(self):
        assert parse_query("a\nb\tc") == ("a", "b", "c")


class TestMatchKeywords:
    def test_matches_in_query_order(self, index):
        matches = match_keywords(index, ("Smith", "XML"))
        assert [m.keyword for m in matches] == ["Smith", "XML"]

    def test_keyword_spelling_preserved(self, index):
        matches = match_keywords(index, ("XML",))
        assert matches[0].keyword == "XML"

    def test_tuple_ids(self, index, company_db):
        matches = match_keywords(index, ("Smith",))
        labels = {company_db.tuple(t).label for t in matches[0].tuple_ids}
        assert labels == {"e1", "e2"}

    def test_empty_match(self, index):
        matches = match_keywords(index, ("nothinghere",))
        assert matches[0].is_empty
        assert len(matches[0]) == 0

    def test_no_keywords_rejected(self, index):
        with pytest.raises(QueryError):
            match_keywords(index, ())

    def test_matched_attributes(self, index, company_db):
        matches = match_keywords(index, ("XML",))
        p2 = company_db.get("PROJECT", "p2").tid
        assert set(matches[0].matched_attributes(p2)) == {
            "P_NAME", "P_DESCRIPTION",
        }

    def test_postings_have_provenance(self, index):
        matches = match_keywords(index, ("Smith",))
        assert all(p.attribute == "L_NAME" for p in matches[0].postings)
        assert all(p.whole_value for p in matches[0].postings)
