"""Unit tests for the ranking strategies."""

import pytest

from repro.core.connections import Connection
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    WeightedRanker,
    rank_connections,
)


@pytest.fixture
def paper_seven(data_graph):
    """Connections 1-7 of Table 2 keyed by row number."""
    labels = {
        1: ["d1", "e1"],
        2: ["p1", "w_f1", "e1"],
        3: ["p1", "d1", "e1"],
        4: ["d1", "p1", "w_f1", "e1"],
        5: ["d2", "e2"],
        6: ["p2", "d2", "e2"],
        7: ["d2", "p3", "w_f2", "e2"],
    }
    return {
        number: Connection.from_labels(data_graph, row)
        for number, row in labels.items()
    }


def order_of(ranked, numbered):
    reverse = {connection: number for number, connection in numbered.items()}
    return [reverse[answer] for answer, __ in ranked]


class TestRdbLengthRanker:
    def test_scores_are_lengths(self, paper_seven):
        ranker = RdbLengthRanker()
        assert ranker.score(paper_seven[1]) == (1.0,)
        assert ranker.score(paper_seven[4]) == (3.0,)

    def test_best_and_worst_match_paper(self, paper_seven):
        ranked = rank_connections(paper_seven.values(), RdbLengthRanker())
        order = order_of(ranked, paper_seven)
        assert set(order[:2]) == {1, 5}
        assert set(order[-2:]) == {4, 7}


class TestErLengthRanker:
    def test_middle_relations_do_not_count(self, paper_seven):
        ranker = ErLengthRanker()
        assert ranker.score(paper_seven[2]) == (1.0,)

    def test_connection2_promoted_over_rdb(self, paper_seven):
        rdb = rank_connections(paper_seven.values(), RdbLengthRanker())
        er = rank_connections(paper_seven.values(), ErLengthRanker())
        rdb_rank = order_of(rdb, paper_seven).index(2)
        er_rank = order_of(er, paper_seven).index(2)
        assert er_rank < rdb_rank


class TestClosenessRanker:
    def test_paper_order(self, paper_seven):
        ranked = rank_connections(paper_seven.values(), ClosenessRanker())
        order = order_of(ranked, paper_seven)
        assert set(order[:3]) == {1, 2, 5}
        assert set(order[3:5]) == {4, 7}
        assert set(order[5:]) == {3, 6}

    def test_scores(self, paper_seven):
        ranker = ClosenessRanker()
        assert ranker.score(paper_seven[1]) == (0.0, 1.0)
        assert ranker.score(paper_seven[4]) == (0.0, 2.0)
        assert ranker.score(paper_seven[3]) == (1.0, 2.0)


class TestInstanceAmbiguityRanker:
    def test_connection3_beats_6(self, paper_seven):
        # Both have one loose joint, but 6's joint is busier (2x2 vs 1x2).
        ranker = InstanceAmbiguityRanker()
        assert ranker.score(paper_seven[3]) < ranker.score(paper_seven[6])

    def test_close_connections_tie_at_factor_one(self, paper_seven):
        ranker = InstanceAmbiguityRanker()
        assert ranker.score(paper_seven[1])[0] == 1.0
        assert ranker.score(paper_seven[2])[0] == 1.0


class TestWeightedRanker:
    def test_pure_joint_weight_equals_closeness_primary(self, paper_seven):
        ranker = WeightedRanker(w_joints=1.0, w_er=0.0)
        assert ranker.score(paper_seven[3]) == (1.0,)
        assert ranker.score(paper_seven[4]) == (0.0,)

    def test_er_weight_breaks_ties(self, paper_seven):
        ranker = WeightedRanker(w_joints=1.0, w_er=0.1)
        assert ranker.score(paper_seven[1]) < ranker.score(paper_seven[4])

    def test_rdb_component(self, paper_seven):
        ranker = WeightedRanker(w_joints=0.0, w_er=0.0, w_rdb=1.0)
        assert ranker.score(paper_seven[4]) == (3.0,)

    def test_ambiguity_component(self, paper_seven):
        ranker = WeightedRanker(
            w_joints=0.0, w_er=0.0, w_ambiguity=1.0
        )
        assert ranker.score(paper_seven[6]) == (3.0,)   # factor 4 - 1
        assert ranker.score(paper_seven[1]) == (0.0,)


class TestRankConnections:
    def test_returns_scores(self, paper_seven):
        ranked = rank_connections(paper_seven.values(), ClosenessRanker())
        assert all(isinstance(score, tuple) for __, score in ranked)

    def test_deterministic_tie_break(self, paper_seven):
        first = rank_connections(paper_seven.values(), ClosenessRanker())
        second = rank_connections(
            list(reversed(list(paper_seven.values()))), ClosenessRanker()
        )
        assert [a.render() for a, __ in first] == [a.render() for a, __ in second]

    def test_empty_input(self):
        assert rank_connections([], ClosenessRanker()) == []
