"""Unit tests for tuple connections and their two lengths (paper §3)."""

import pytest

from repro.core.connections import Connection
from repro.errors import PathError
from repro.relational.database import TupleId


def connection(data_graph, labels, matches=None):
    return Connection.from_labels(data_graph, labels, matches)


class TestConstruction:
    def test_from_labels(self, data_graph):
        c = connection(data_graph, ["d1", "e1"])
        assert c.rdb_length == 1

    def test_from_labels_unjoined_rejected(self, data_graph):
        with pytest.raises(PathError):
            connection(data_graph, ["d1", "e2"])

    def test_needs_two_tuples(self, data_graph):
        with pytest.raises(PathError):
            connection(data_graph, ["d1"])

    def test_from_tuple_ids(self, data_graph):
        c = Connection.from_tuple_ids(
            data_graph,
            [TupleId("DEPARTMENT", ("d1",)), TupleId("EMPLOYEE", ("e1",))],
        )
        assert c.source == TupleId("DEPARTMENT", ("d1",))
        assert c.target == TupleId("EMPLOYEE", ("e1",))

    def test_disconnected_steps_rejected(self, data_graph):
        first = connection(data_graph, ["d1", "e1"])
        second = connection(data_graph, ["d2", "e2"])
        with pytest.raises(PathError):
            Connection(data_graph, list(first.steps) + list(second.steps))


class TestLengths:
    """RDB vs ER length for all nine connections of Table 2."""

    @pytest.mark.parametrize(
        "labels, rdb, er",
        [
            (["d1", "e1"], 1, 1),                       # 1
            (["p1", "w_f1", "e1"], 2, 1),               # 2
            (["p1", "d1", "e1"], 2, 2),                 # 3
            (["d1", "p1", "w_f1", "e1"], 3, 2),         # 4
            (["d2", "e2"], 1, 1),                       # 5
            (["p2", "d2", "e2"], 2, 2),                 # 6
            (["d2", "p3", "w_f2", "e2"], 3, 2),         # 7
            (["d1", "e3", "t1"], 2, 2),                 # 8
            (["d2", "p2", "w_f3", "e3", "t1"], 4, 3),   # 9
        ],
    )
    def test_table2_lengths(self, data_graph, labels, rdb, er):
        c = connection(data_graph, labels)
        assert c.rdb_length == rdb
        assert c.er_length == er

    def test_er_length_never_exceeds_rdb_length(self, data_graph):
        c = connection(data_graph, ["d2", "p2", "w_f3", "e3", "t1"])
        assert c.er_length <= c.rdb_length

    def test_middle_tuples_reported(self, data_graph, company_db):
        c = connection(data_graph, ["p1", "w_f1", "e1"])
        middles = [company_db.tuple(t).label for t in c.middle_tuples()]
        assert middles == ["w_f1"]

    def test_terminal_middle_tuple_not_collapsed(self, data_graph):
        # A connection ending in a middle tuple (keyword in HOURS, say)
        # keeps that tuple: nothing to collapse it into.
        c = connection(data_graph, ["p1", "w_f1"])
        assert c.rdb_length == 1
        assert c.er_length == 1
        assert c.middle_tuples() == ()


class TestConceptualSteps:
    def test_collapsed_step_is_nm(self, data_graph):
        c = connection(data_graph, ["p1", "w_f1", "e1"])
        steps = c.conceptual_steps()
        assert len(steps) == 1
        assert steps[0].cardinality.is_many_to_many
        assert steps[0].middle == TupleId("WORKS_FOR", ("e1", "p1"))

    def test_plain_step_cardinalities(self, data_graph):
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert [str(s.cardinality) for s in c.conceptual_steps()] == ["N:1", "1:N"]

    def test_edge_steps_recorded(self, data_graph):
        c = connection(data_graph, ["d1", "p1", "w_f1", "e1"])
        steps = c.conceptual_steps()
        assert len(steps[0].edge_steps) == 1
        assert len(steps[1].edge_steps) == 2

    def test_cardinalities_sequence(self, data_graph):
        c = connection(data_graph, ["d2", "p2", "w_f3", "e3", "t1"])
        assert [str(x) for x in c.cardinalities()] == ["1:N", "N:M", "1:N"]

    def test_conceptual_steps_cached(self, data_graph):
        c = connection(data_graph, ["d1", "e1"])
        assert c.conceptual_steps() is c.conceptual_steps()


class TestVerdicts:
    @pytest.mark.parametrize(
        "labels, close",
        [
            (["d1", "e1"], True),                      # 1: immediate
            (["p1", "w_f1", "e1"], True),              # 2: immediate (concept)
            (["p1", "d1", "e1"], False),               # 3: transitive N:M
            (["d1", "p1", "w_f1", "e1"], False),       # 4: 1:N + N:M
            (["d2", "e2"], True),                      # 5
            (["p2", "d2", "e2"], False),               # 6
            (["d2", "p3", "w_f2", "e2"], False),       # 7
            (["d1", "e3", "t1"], True),                # 8: functional
            (["d2", "p2", "w_f3", "e3", "t1"], False), # 9
        ],
    )
    def test_schema_level_closeness(self, data_graph, labels, close):
        assert connection(data_graph, labels).verdict().is_close is close

    def test_connection3_has_a_loose_joint(self, data_graph):
        verdict = connection(data_graph, ["p1", "d1", "e1"]).verdict()
        assert verdict.loose_joint_positions == (0,)

    def test_connection4_has_no_loose_joint(self, data_graph):
        verdict = connection(data_graph, ["d1", "p1", "w_f1", "e1"]).verdict()
        assert verdict.loose_joint_positions == ()


class TestRendering:
    def test_render_plain(self, data_graph):
        c = connection(data_graph, ["d1", "e1"])
        assert c.render() == "d1 – e1"

    def test_render_with_keywords(self, data_graph):
        c = connection(
            data_graph, ["d1", "e1"], {"d1": ["XML"], "e1": ["Smith"]}
        )
        assert c.render() == "d1(XML) – e1(Smith)"

    def test_render_with_cardinalities(self, data_graph):
        c = connection(
            data_graph, ["p1", "w_f1", "e1"], {"p1": ["XML"], "e1": ["Smith"]}
        )
        assert c.render_with_cardinalities() == "p1(XML) 1:N w_f1 N:1 e1(Smith)"

    def test_render_conceptual_collapses_middle(self, data_graph):
        c = connection(data_graph, ["p1", "w_f1", "e1"])
        assert c.render_conceptual() == "p1 N:M e1"

    def test_multiple_keywords_sorted(self, data_graph):
        c = connection(data_graph, ["d1", "e1"], {"d1": ["xml", "cs"]})
        assert c.render().startswith("d1(cs,xml)")


class TestEquality:
    def test_equal_paths(self, data_graph):
        assert connection(data_graph, ["d1", "e1"]) == connection(
            data_graph, ["d1", "e1"]
        )

    def test_direction_matters(self, data_graph):
        assert connection(data_graph, ["d1", "e1"]) != connection(
            data_graph, ["e1", "d1"]
        )

    def test_hashable(self, data_graph):
        c1 = connection(data_graph, ["d1", "e1"])
        c2 = connection(data_graph, ["d1", "e1"])
        assert len({c1, c2}) == 1

    def test_tuple_ids_order(self, data_graph):
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert [t.relation for t in c.tuple_ids()] == [
            "PROJECT", "DEPARTMENT", "EMPLOYEE",
        ]

    def test_endpoints(self, data_graph):
        c = connection(data_graph, ["p1", "d1", "e1"])
        assert c.endpoints == (
            TupleId("PROJECT", ("p1",)),
            TupleId("EMPLOYEE", ("e1",)),
        )
