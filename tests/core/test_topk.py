"""Unit tests for lazy top-k search with early termination."""

import pytest

from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    rank_connections,
)
from repro.core.search import SearchLimits, find_connections
from repro.core.topk import lower_bound_for, top_k_connections
from repro.errors import QueryError


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


def full_ranking(data_graph, matches, ranker, limits):
    answers = [
        answer
        for answer in find_connections(
            data_graph, matches, limits, include_single_tuples=False
        )
        if isinstance(answer, Connection)
    ]
    return rank_connections(answers, ranker)


class TestLowerBounds:
    def test_rdb_bound_is_exact(self):
        assert lower_bound_for(RdbLengthRanker(), 3) == (3.0,)

    def test_er_bound_halves(self):
        assert lower_bound_for(ErLengthRanker(), 4) == (2.0,)
        assert lower_bound_for(ErLengthRanker(), 5) == (3.0,)

    def test_closeness_bound(self):
        assert lower_bound_for(ClosenessRanker(), 3) == (0.0, 2.0)

    def test_unbounded_ranker(self):
        assert lower_bound_for(InstanceAmbiguityRanker(), 3) is None

    def test_bounds_are_sound(self, data_graph, smith_xml):
        """No connection may score below its length's lower bound."""
        limits = SearchLimits(max_rdb_length=4)
        for ranker in (RdbLengthRanker(), ErLengthRanker(), ClosenessRanker()):
            for answer in find_connections(
                data_graph, smith_xml, limits, include_single_tuples=False
            ):
                if not isinstance(answer, Connection):
                    continue
                bound = lower_bound_for(ranker, answer.rdb_length)
                assert ranker.score(answer) >= bound


class TestEquivalenceWithFullSort:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7, 20])
    @pytest.mark.parametrize(
        "ranker",
        [RdbLengthRanker(), ErLengthRanker(), ClosenessRanker(),
         InstanceAmbiguityRanker()],
        ids=lambda r: r.name,
    )
    def test_matches_full_enumeration(self, data_graph, smith_xml, ranker, k):
        limits = SearchLimits(max_rdb_length=4)
        lazy = top_k_connections(data_graph, smith_xml, ranker, k, limits)
        full = full_ranking(data_graph, smith_xml, ranker, limits)[:k]
        assert [(c.render(), s) for c, s in lazy] == [
            (a.render(), s) for a, s in full
        ]

    def test_synthetic_database_equivalence(self, small_synthetic):
        from repro.core.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(small_synthetic)
        # Pick two short-ish names actually present in the data.
        vocabulary = engine.index.vocabulary()
        names = [w for w in vocabulary if w.isalpha()][:2]
        matches = match_keywords(engine.index, tuple(names))
        if any(match.is_empty for match in matches):
            pytest.skip("vocabulary sample not searchable")
        limits = SearchLimits(max_rdb_length=3)
        lazy = top_k_connections(
            engine.data_graph, matches, ClosenessRanker(), 5, limits
        )
        full = full_ranking(
            engine.data_graph, matches, ClosenessRanker(), limits
        )[:5]
        assert [(c.render(), s) for c, s in lazy] == [
            (a.render(), s) for a, s in full
        ]


class TestBasics:
    def test_k_zero(self, data_graph, smith_xml):
        assert top_k_connections(
            data_graph, smith_xml, ClosenessRanker(), 0
        ) == []

    def test_k_larger_than_answers(self, data_graph, smith_xml):
        limits = SearchLimits(max_rdb_length=3)
        results = top_k_connections(
            data_graph, smith_xml, ClosenessRanker(), 100, limits
        )
        assert len(results) == 7

    def test_needs_two_keywords(self, data_graph, index):
        matches = match_keywords(index, ("XML",))
        with pytest.raises(QueryError):
            top_k_connections(data_graph, matches, ClosenessRanker(), 3)

    def test_unmatched_keyword(self, data_graph, index):
        matches = match_keywords(index, ("XML", "unicorn"))
        assert top_k_connections(
            data_graph, matches, ClosenessRanker(), 3
        ) == []

    def test_results_sorted(self, data_graph, smith_xml):
        results = top_k_connections(
            data_graph, smith_xml, ClosenessRanker(), 5,
            SearchLimits(max_rdb_length=4),
        )
        scores = [score for __, score in results]
        assert scores == sorted(scores)


class TestTraversalCoreRouting:
    """Top-k enumerates through the fast core (with an escape hatch)."""

    @pytest.mark.parametrize(
        "ranker",
        [RdbLengthRanker(), ErLengthRanker(), ClosenessRanker()],
        ids=lambda r: r.name,
    )
    def test_slow_core_identical(self, data_graph, smith_xml, ranker):
        limits = SearchLimits(max_rdb_length=4)
        fast = top_k_connections(data_graph, smith_xml, ranker, 5, limits)
        slow = top_k_connections(
            data_graph, smith_xml, ranker, 5, limits,
            use_fast_traversal=False,
        )
        assert [(c.render(), s) for c, s in fast] == [
            (c.render(), s) for c, s in slow
        ]

    def test_engine_cache_is_reused(self, engine, smith_xml):
        engine.search("Smith XML")  # warm the cache
        hits_before = engine.traversal_cache.hits
        top_k_connections(
            engine.data_graph, smith_xml, ClosenessRanker(), 3,
            SearchLimits(max_rdb_length=4), cache=engine.traversal_cache,
        )
        assert engine.traversal_cache.hits > hits_before

    def test_engine_top_k_uses_pushdown(self, engine):
        """engine.search(top_k=...) rides the pushdown path end to end."""
        engine.search("Smith XML", top_k=2,
                      limits=SearchLimits(max_rdb_length=4))
        assert engine.last_stats.pushdown
        pushdown_candidates = engine.last_stats.candidates
        engine.search("Smith XML", limits=SearchLimits(max_rdb_length=4))
        assert pushdown_candidates < engine.last_stats.candidates
