"""Unit tests for the paper's company dataset (Figures 1 and 2)."""

import pytest

from repro.datasets.company import (
    TABLE1_ENTITY_SEQUENCES,
    build_company_database,
    build_company_er_schema,
    build_company_schema,
)


class TestErSchema:
    def test_four_entities_four_relationships(self, er_schema):
        assert len(er_schema.entity_types) == 4
        assert len(er_schema.relationships) == 4

    def test_validates(self, er_schema):
        er_schema.validate()

    def test_table1_sequences_are_well_formed(self, er_schema):
        from repro.er.paths import ERPath

        for sequence in TABLE1_ENTITY_SEQUENCES:
            if len(sequence) >= 2:
                ERPath.from_relationships(er_schema, sequence)


class TestRelationalSchema:
    def test_five_relations(self, db_schema):
        assert len(db_schema.relations) == 5

    def test_five_foreign_keys(self, db_schema):
        assert len(db_schema.foreign_keys) == 5

    def test_works_for_is_middle(self, db_schema):
        relation = db_schema.relation("WORKS_FOR")
        assert relation.is_middle
        assert relation.implements_relationship == "WORKS_ON"
        assert relation.primary_key == ("ESSN", "P_ID")

    def test_description_attributes_are_text(self, db_schema):
        assert db_schema.relation("DEPARTMENT").attribute("D_DESCRIPTION").is_text
        assert db_schema.relation("PROJECT").attribute("P_DESCRIPTION").is_text

    def test_validates(self, db_schema):
        db_schema.validate()


class TestInstance:
    def test_counts(self, company_db):
        assert company_db.count("DEPARTMENT") == 3
        assert company_db.count("PROJECT") == 3
        assert company_db.count("EMPLOYEE") == 4
        assert company_db.count("WORKS_FOR") == 4
        assert company_db.count("DEPENDENT") == 2

    def test_integrity(self, company_db):
        company_db.check_integrity()

    def test_figure2_values_spot_checks(self, company_db):
        assert company_db.get("DEPARTMENT", "d3")["D_NAME"] == "history"
        assert company_db.get("PROJECT", "p2")["P_NAME"] == "XML and IR"
        assert company_db.get("EMPLOYEE", "e2")["S_NAME"] == "Barbara"
        assert company_db.get("WORKS_FOR", "e4", "p3")["HOURS"] == 60
        assert company_db.get("DEPENDENT", "t2")["DEPENDENT_NAME"] == "Theodore"

    def test_works_for_labels_in_print_order(self, company_db):
        labels = [t.label for t in company_db.tuples("WORKS_FOR")]
        assert labels == ["w_f1", "w_f2", "w_f3", "w_f4"]

    def test_employee_department_assignments(self, company_db):
        assignments = {
            t.label: t["D_ID"] for t in company_db.tuples("EMPLOYEE")
        }
        assert assignments == {"e1": "d1", "e2": "d2", "e3": "d1", "e4": "d2"}

    def test_dependents_belong_to_e3(self, company_db):
        essns = {t["ESSN"] for t in company_db.tuples("DEPENDENT")}
        assert essns == {"e3"}

    def test_fresh_instances_are_independent(self):
        first = build_company_database()
        second = build_company_database()
        first.insert("DEPARTMENT", {"ID": "d9"})
        assert second.get("DEPARTMENT", "d9") is None
