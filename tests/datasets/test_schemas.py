"""Unit tests for the parametric ER schema generators."""

import pytest

from repro.core.associations import classify_er_path
from repro.datasets.schemas import (
    chain_schema,
    instantiate_er,
    random_schema,
    star_schema,
)
from repro.er.paths import ERPath


class TestChainSchema:
    def test_structure(self):
        schema = chain_schema(["1:N", "N:M"])
        assert len(schema.entity_types) == 3
        assert len(schema.relationships) == 2

    def test_cardinalities_as_specified(self):
        schema = chain_schema(["1:N", "N:M", "N:1"])
        assert str(schema.relationship("R0").cardinality) == "1:N"
        assert str(schema.relationship("R1").cardinality) == "N:M"
        assert str(schema.relationship("R2").cardinality) == "N:1"

    def test_end_to_end_path_matches_spec(self):
        schema = chain_schema(["N:1", "1:N"])
        path = ERPath.from_relationships(schema, ["E0", "E1", "E2"])
        assert [str(c) for c in path.cardinalities()] == ["N:1", "1:N"]
        assert classify_er_path(path).is_loose

    def test_accepts_cardinality_objects(self):
        from repro.er.cardinality import Cardinality

        schema = chain_schema([Cardinality.parse("1:1")])
        assert str(schema.relationship("R0").cardinality) == "1:1"


class TestStarSchema:
    def test_structure(self):
        schema = star_schema(4)
        assert len(schema.entity_types) == 5
        assert len(schema.relationships) == 4

    def test_hub_is_in_every_relationship(self):
        schema = star_schema(3)
        for relationship in schema.relationships:
            assert "HUB" in (relationship.left, relationship.right)

    def test_satellite_to_satellite_is_loose(self):
        schema = star_schema(2, "1:N")
        path = ERPath.from_relationships(schema, ["S0", "HUB", "S1"])
        verdict = classify_er_path(path)
        assert verdict.is_loose
        assert verdict.loose_joint_positions == (0,)


class TestRandomSchema:
    def test_connected(self):
        schema = random_schema(entities=8, extra_relationships=2, seed=1)
        # Reachability via relationships: BFS over neighbours.
        seen = {"E0"}
        frontier = ["E0"]
        while frontier:
            current = frontier.pop()
            for __, other in schema.neighbours(current):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert len(seen) == 8

    def test_deterministic(self):
        first = random_schema(entities=6, seed=9)
        second = random_schema(entities=6, seed=9)
        assert [str(r) for r in first.relationships] == [
            str(r) for r in second.relationships
        ]

    def test_extra_relationships_counted(self):
        schema = random_schema(entities=5, extra_relationships=3, seed=2)
        assert len(schema.relationships) == 4 + 3

    def test_nm_probability_extremes(self):
        none = random_schema(entities=6, seed=4, nm_probability=0.0)
        assert all(not r.cardinality.is_many_to_many for r in none.relationships)
        always = random_schema(entities=6, seed=4, nm_probability=1.0)
        assert all(r.cardinality.is_many_to_many for r in always.relationships)


class TestInstantiation:
    def test_instance_is_consistent(self):
        schema = chain_schema(["1:N", "N:M"])
        database, mapping = instantiate_er(schema, per_entity=4, seed=3)
        database.check_integrity()

    def test_per_entity_counts(self):
        schema = chain_schema(["1:N"])
        database, mapping = instantiate_er(schema, per_entity=5)
        assert database.count("E0") == 5
        assert database.count("E1") == 5

    def test_nm_instances_fill_middle(self):
        schema = chain_schema(["N:M"])
        database, mapping = instantiate_er(schema, per_entity=4, fanout=2)
        middle = mapping.relation_of_relationship["R0"]
        assert database.count(middle) == 8

    def test_one_to_one_instances_unique(self):
        schema = chain_schema(["1:1"])
        database, mapping = instantiate_er(schema, per_entity=5)
        fk = mapping.schema.foreign_key(mapping.fk_of_relationship["R0"])
        values = [
            t.values[fk.source_columns[0]]
            for t in database.tuples(fk.source)
            if t.values[fk.source_columns[0]] is not None
        ]
        assert len(values) == len(set(values))

    def test_deterministic(self):
        schema = star_schema(3)
        first, __ = instantiate_er(schema, per_entity=4, seed=6)
        second, __ = instantiate_er(schema, per_entity=4, seed=6)
        first_rows = [t.values for t in first.all_tuples()]
        second_rows = [t.values for t in second.all_tuples()]
        assert first_rows == second_rows
