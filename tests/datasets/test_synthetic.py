"""Unit tests for the synthetic generator and keyword planting."""

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.errors import QueryError
from repro.relational.index import InvertedIndex


class TestGeneration:
    def test_counts_match_config(self, small_synthetic):
        assert small_synthetic.count("DEPARTMENT") == 3
        assert small_synthetic.count("PROJECT") == 6
        assert small_synthetic.count("EMPLOYEE") == 12
        assert small_synthetic.count("WORKS_FOR") == 24

    def test_integrity(self, small_synthetic):
        small_synthetic.check_integrity()

    def test_deterministic_for_same_seed(self):
        config = SyntheticConfig(departments=2, employees_per_department=3, seed=5)
        first = generate_company_like(config)
        second = generate_company_like(config)
        first_names = [t["L_NAME"] for t in first.tuples("EMPLOYEE")]
        second_names = [t["L_NAME"] for t in second.tuples("EMPLOYEE")]
        assert first_names == second_names

    def test_different_seeds_differ(self):
        base = SyntheticConfig(departments=2, employees_per_department=5)
        first = generate_company_like(base)
        second = generate_company_like(
            SyntheticConfig(departments=2, employees_per_department=5, seed=99)
        )
        first_names = [t["L_NAME"] for t in first.tuples("EMPLOYEE")]
        second_names = [t["L_NAME"] for t in second.tuples("EMPLOYEE")]
        assert first_names != second_names

    def test_expected_tuples_estimate(self):
        config = SyntheticConfig()
        database = generate_company_like(config)
        estimate = config.expected_tuples()
        assert abs(database.count() - estimate) <= estimate * 0.5

    def test_every_employee_works_on_projects(self, small_synthetic):
        essns = {t["ESSN"] for t in small_synthetic.tuples("WORKS_FOR")}
        assert essns == {t["SSN"] for t in small_synthetic.tuples("EMPLOYEE")}

    def test_schema_is_company_shaped(self, small_synthetic):
        assert small_synthetic.schema.relation("WORKS_FOR").is_middle


class TestPlanting:
    def test_plants_exact_count(self):
        database = generate_company_like(SyntheticConfig(departments=3))
        labels = plant(database, "needle", "EMPLOYEE", "L_NAME", count=4)
        assert len(labels) == 4
        index = InvertedIndex(database)
        assert index.document_frequency("needle") == 4

    def test_plant_too_many_rejected(self):
        database = generate_company_like(SyntheticConfig(departments=1))
        with pytest.raises(QueryError):
            plant(database, "needle", "DEPARTMENT", "D_NAME", count=99)

    def test_plant_into_null_attribute(self):
        database = generate_company_like(SyntheticConfig(departments=2))
        # HOURS is an int column but planting rewrites as text; use a str
        # column that may be anything - D_NAME is never NULL here, so make
        # a NULL by inserting a fresh department.
        database.insert("DEPARTMENT", {"ID": "dx"})
        labels = plant(database, "needle", "DEPARTMENT", "D_NAME",
                       count=database.count("DEPARTMENT"), seed=1)
        index = InvertedIndex(database)
        assert index.document_frequency("needle") == len(labels)

    def test_plant_deterministic(self):
        first = generate_company_like(SyntheticConfig(departments=3))
        second = generate_company_like(SyntheticConfig(departments=3))
        assert plant(first, "kw", "EMPLOYEE", "L_NAME", 3, seed=7) == \
            plant(second, "kw", "EMPLOYEE", "L_NAME", 3, seed=7)
