"""Unit tests for workload generation."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, generate_workload


@pytest.fixture
def database():
    return generate_company_like(
        SyntheticConfig(departments=3, employees_per_department=5, seed=21)
    )


class TestGenerateWorkload:
    def test_query_count(self, database):
        workload = generate_workload(database, WorkloadConfig(queries=4))
        assert len(workload) == 4

    def test_keywords_per_query(self, database):
        workload = generate_workload(
            database, WorkloadConfig(queries=2, keywords_per_query=3)
        )
        assert all(len(q.keywords) == 3 for q in workload)

    def test_keywords_are_unique_across_workload(self, database):
        workload = generate_workload(database, WorkloadConfig(queries=5))
        all_keywords = [k for q in workload for k in q.keywords]
        assert len(all_keywords) == len(set(all_keywords))

    def test_planted_selectivity_is_exact(self, database):
        workload = generate_workload(
            database, WorkloadConfig(queries=3, matches_per_keyword=2)
        )
        engine = KeywordSearchEngine(database)
        for query in workload:
            for keyword in query.keywords:
                assert engine.index.document_frequency(keyword) == 2

    def test_ground_truth_labels_match_index(self, database):
        workload = generate_workload(
            database, WorkloadConfig(queries=2, matches_per_keyword=3)
        )
        engine = KeywordSearchEngine(database)
        for query in workload:
            for keyword, labels in query.planted_labels.items():
                matched = {
                    database.tuple(t).label
                    for t in engine.index.matching_tuples(keyword)
                }
                assert matched == set(labels)

    def test_queries_are_searchable(self, database):
        workload = generate_workload(
            database, WorkloadConfig(queries=2, matches_per_keyword=2)
        )
        engine = KeywordSearchEngine(database)
        for query in workload:
            engine.search(query.text, top_k=3)  # must not raise

    def test_deterministic(self):
        first_db = generate_company_like(SyntheticConfig(seed=33))
        second_db = generate_company_like(SyntheticConfig(seed=33))
        first = generate_workload(first_db, WorkloadConfig(seed=5))
        second = generate_workload(second_db, WorkloadConfig(seed=5))
        assert [q.planted_labels for q in first] == [
            q.planted_labels for q in second
        ]


class TestBatchTexts:
    def test_flattens_in_order(self, database):
        from repro.datasets.workload import batch_texts

        workload = generate_workload(database, WorkloadConfig(queries=3))
        assert batch_texts(workload) == [q.text for q in workload]

    def test_repeats_cycle_the_workload(self, database):
        from repro.datasets.workload import batch_texts

        workload = generate_workload(database, WorkloadConfig(queries=2))
        texts = batch_texts(workload, repeats=3)
        assert texts == [q.text for q in workload] * 3

    def test_repeats_below_one_clamped(self, database):
        from repro.datasets.workload import batch_texts

        workload = generate_workload(database, WorkloadConfig(queries=2))
        assert batch_texts(workload, repeats=0) == [q.text for q in workload]


class TestMixedWorkload:
    def test_deterministic(self, database):
        from repro.datasets.workload import (
            MixedWorkloadConfig,
            generate_mixed_workload,
        )

        queries = generate_workload(database, WorkloadConfig(queries=3))
        config = MixedWorkloadConfig(operations=20, seed=5)
        first = generate_mixed_workload(database, queries, config)
        second = generate_mixed_workload(database, queries, config)
        assert first == second

    def test_update_ratio_zero_is_read_only(self, database):
        from repro.datasets.workload import (
            MixedWorkloadConfig,
            generate_mixed_workload,
        )

        queries = generate_workload(database, WorkloadConfig(queries=3))
        stream = generate_mixed_workload(
            database, queries, MixedWorkloadConfig(operations=15, update_ratio=0.0)
        )
        assert all(op.kind == "search" for op in stream)

    def test_mutation_batches_apply_cleanly(self, database):
        from repro.core.engine import KeywordSearchEngine
        from repro.datasets.workload import (
            MixedWorkloadConfig,
            generate_mixed_workload,
        )

        queries = generate_workload(database, WorkloadConfig(queries=3))
        stream = generate_mixed_workload(
            database,
            queries,
            MixedWorkloadConfig(operations=20, update_ratio=0.5, seed=11),
        )
        engine = KeywordSearchEngine(database)
        applies = [op for op in stream if op.kind == "apply"]
        assert applies
        for op in applies:
            engine.apply(op.mutations)
        fresh = KeywordSearchEngine(database)
        for query in queries:
            assert [r.render() for r in engine.search(query.text)] == [
                r.render() for r in fresh.search(query.text)
            ]

    def test_skew_concentrates_reads(self, database):
        from collections import Counter

        from repro.datasets.workload import (
            MixedWorkloadConfig,
            generate_mixed_workload,
        )

        queries = generate_workload(database, WorkloadConfig(queries=4))
        stream = generate_mixed_workload(
            database,
            queries,
            MixedWorkloadConfig(
                operations=200, update_ratio=0.0, skew=2.5, seed=3
            ),
        )
        counts = Counter(op.query for op in stream)
        assert counts[queries[0].text] > counts[queries[-1].text]
