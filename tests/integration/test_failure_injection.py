"""Robustness: corrupted data, unusual schemas, adversarial structures."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.errors import ForeignKeyError, PrimaryKeyError, SchemaError
from repro.graph.data_graph import DataGraph
from repro.relational.database import Database
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)


def self_referencing_schema():
    """EMPLOYEE with a MANAGER FK onto itself (a schema-graph cycle)."""
    schema = DatabaseSchema(name="org")
    schema.add_relation(
        Relation(
            "EMPLOYEE",
            [
                AttributeDef("ID"),
                AttributeDef("NAME"),
                AttributeDef("MANAGER_ID"),
            ],
            primary_key=["ID"],
        )
    )
    schema.add_foreign_key(
        ForeignKey("fk_manager", "EMPLOYEE", ("MANAGER_ID",), "EMPLOYEE", ("ID",))
    )
    return schema


def parallel_fk_schema():
    """FLIGHT with two FKs onto AIRPORT (origin and destination)."""
    schema = DatabaseSchema(name="air")
    schema.add_relation(
        Relation("AIRPORT", [AttributeDef("ID"), AttributeDef("CITY")],
                 primary_key=["ID"])
    )
    schema.add_relation(
        Relation(
            "FLIGHT",
            [
                AttributeDef("ID"),
                AttributeDef("ORIGIN"),
                AttributeDef("DEST"),
            ],
            primary_key=["ID"],
        )
    )
    schema.add_foreign_key(
        ForeignKey("fk_origin", "FLIGHT", ("ORIGIN",), "AIRPORT", ("ID",))
    )
    schema.add_foreign_key(
        ForeignKey("fk_dest", "FLIGHT", ("DEST",), "AIRPORT", ("ID",))
    )
    return schema


class TestSelfReference:
    def test_management_chain_is_searchable(self):
        database = Database(self_referencing_schema(), enforce_foreign_keys=False)
        database.insert("EMPLOYEE", {"ID": "e1", "NAME": "Root"})
        database.insert("EMPLOYEE", {"ID": "e2", "NAME": "Alpha",
                                     "MANAGER_ID": "e1"})
        database.insert("EMPLOYEE", {"ID": "e3", "NAME": "Beta",
                                     "MANAGER_ID": "e2"})
        database.check_integrity()
        engine = KeywordSearchEngine(database)
        results = engine.search("Root Beta", limits=SearchLimits(max_rdb_length=3))
        assert results
        assert results[0].answer.rdb_length == 2

    def test_self_loop_tuple(self):
        """A tuple managing itself must not break graph construction."""
        database = Database(self_referencing_schema(), enforce_foreign_keys=False)
        database.insert("EMPLOYEE", {"ID": "e1", "NAME": "Ouroboros",
                                     "MANAGER_ID": "e1"})
        database.check_integrity()
        graph = DataGraph(database)
        assert graph.number_of_nodes() == 1
        engine = KeywordSearchEngine(database)
        results = engine.search("Ouroboros")
        assert len(results) == 1


class TestParallelForeignKeys:
    @pytest.fixture
    def flights(self):
        database = Database(parallel_fk_schema(), enforce_foreign_keys=False)
        database.insert("AIRPORT", {"ID": "a1", "CITY": "Helsinki"})
        database.insert("AIRPORT", {"ID": "a2", "CITY": "Venice"})
        database.insert("FLIGHT", {"ID": "f1", "ORIGIN": "a1", "DEST": "a2"})
        database.check_integrity()
        return database

    def test_both_edges_materialise(self, flights):
        graph = DataGraph(flights)
        assert graph.number_of_edges() == 2

    def test_path_uses_both_foreign_keys(self, flights):
        from repro.graph.traversal import enumerate_simple_paths
        from repro.relational.database import TupleId

        graph = DataGraph(flights)
        paths = list(
            enumerate_simple_paths(
                graph,
                TupleId("AIRPORT", ("a1",)),
                TupleId("AIRPORT", ("a2",)),
                2,
            )
        )
        assert len(paths) == 1
        assert [step.edge_key for step in paths[0]] == ["fk_origin", "fk_dest"]

    def test_round_trip_flight_creates_parallel_edges(self):
        """A flight with origin == destination: two edges, same tuple pair."""
        database = Database(parallel_fk_schema(), enforce_foreign_keys=False)
        database.insert("AIRPORT", {"ID": "a1", "CITY": "Helsinki"})
        database.insert("FLIGHT", {"ID": "f1", "ORIGIN": "a1", "DEST": "a1"})
        database.check_integrity()
        graph = DataGraph(database)
        from repro.relational.database import TupleId

        edges = graph.edges_between(
            TupleId("FLIGHT", ("f1",)), TupleId("AIRPORT", ("a1",))
        )
        assert {data["foreign_key"].name for data in edges} == {
            "fk_origin", "fk_dest",
        }

    def test_search_between_cities(self, flights):
        engine = KeywordSearchEngine(flights)
        results = engine.search("Helsinki Venice")
        assert results
        assert results[0].answer.rdb_length == 2


class TestCorruption:
    def test_dangling_fk_rejected_at_check(self, company_db):
        record = company_db.get("EMPLOYEE", "e1")
        record.values["D_ID"] = "d99"  # corrupt behind the API's back
        with pytest.raises(ForeignKeyError):
            company_db.check_integrity()

    def test_duplicate_pk_rejected(self, company_db):
        with pytest.raises(PrimaryKeyError):
            company_db.insert("EMPLOYEE", {"SSN": "e1", "L_NAME": "Dup",
                                           "S_NAME": "Dup", "D_ID": "d1"})

    def test_graph_build_with_dangling_reference_skips_edge(self, company_db):
        record = company_db.get("EMPLOYEE", "e1")
        record.values["D_ID"] = "d99"
        graph = DataGraph(company_db)  # must not raise
        from repro.relational.database import TupleId

        assert not graph.edges_between(
            TupleId("EMPLOYEE", ("e1",)), TupleId("DEPARTMENT", ("d1",))
        )

    def test_search_on_corrupted_graph_still_terminates(self, company_db):
        record = company_db.get("EMPLOYEE", "e1")
        record.values["D_ID"] = None
        engine = KeywordSearchEngine(company_db)
        results = engine.search("Smith XML", limits=SearchLimits(max_rdb_length=3))
        # e1 lost its department edge; e2's connections survive.
        rendered = {r.answer.render() for r in results}
        assert "e2(Smith) – d2(XML)" in rendered
        assert "e1(Smith) – d1(XML)" not in rendered


class TestDegenerateInstances:
    def test_empty_database(self, db_schema):
        database = Database(db_schema)
        engine = KeywordSearchEngine(database)
        assert engine.search("anything") == []

    def test_single_tuple_database(self, db_schema):
        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "d1", "D_NAME": "solo"})
        engine = KeywordSearchEngine(database)
        results = engine.search("solo")
        assert len(results) == 1

    def test_all_null_text_attributes(self, db_schema):
        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "d1"})
        database.insert("DEPARTMENT", {"ID": "d2"})
        engine = KeywordSearchEngine(database)
        assert engine.search("anything") == []
        assert len(engine.search("d1")) == 1  # key values stay matchable
