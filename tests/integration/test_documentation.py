"""Guard the documentation: README/DESIGN claims must stay executable."""

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart block, verbatim."""
        from repro import KeywordSearchEngine, SearchLimits, build_company_database

        engine = KeywordSearchEngine(build_company_database())
        results = engine.search(
            "Smith XML", limits=SearchLimits(max_rdb_length=3)
        )
        assert results
        for result in results:
            assert engine.explain(result)

    def test_public_api_exports(self):
        """Everything the README's architecture section names is importable."""
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestCliDocumentation:
    def test_documented_commands_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions  # noqa: SLF001 - argparse introspection
            if hasattr(action, "choices") and action.choices
        )
        assert set(subparsers.choices) == {
            "search", "snapshot", "lint", "stats", "plan", "reproduce",
            "analyze", "mtjnt", "generate", "wal",
        }


class TestDesignExperimentIndex:
    def test_every_indexed_bench_file_exists(self):
        """DESIGN.md's per-experiment index names real bench files."""
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for line in design.splitlines():
            if "benchmarks/bench_" not in line:
                continue
            for token in line.split("`"):
                if token.startswith("benchmarks/bench_"):
                    assert (REPO_ROOT / token).exists(), token

    def test_every_bench_file_is_indexed(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert f"benchmarks/{bench.name}" in design, bench.name

    def test_experiments_md_covers_all_artefacts(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for heading in ("T1", "T2", "T3", "F1", "F2", "C1", "C2", "S1",
                        "S2", "S3", "A1", "A2"):
            assert f"## {heading}" in experiments, heading


class TestExamplesExist:
    def test_readme_examples_exist(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for line in readme.splitlines():
            stripped = line.strip()
            if stripped.startswith("python examples/"):
                script = stripped.split()[1]
                assert (REPO_ROOT / script).exists(), script

    def test_at_least_three_examples(self):
        assert len(list((REPO_ROOT / "examples").glob("*.py"))) >= 3
