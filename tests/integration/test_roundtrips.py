"""Cross-module round trips: ER <-> relational <-> files <-> search."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.company import build_company_database, build_company_er_schema
from repro.datasets.schemas import instantiate_er, random_schema
from repro.er.mapping import map_er_to_relational
from repro.er.reverse import reverse_engineer
from repro.relational.io import database_from_dict, database_to_dict


class TestSearchAfterSerialisation:
    def test_reloaded_database_searches_identically(self):
        original = build_company_database()
        reloaded = database_from_dict(database_to_dict(original))
        first = [
            r.answer.render()
            for r in KeywordSearchEngine(original).search("Smith XML")
        ]
        second = [
            r.answer.render()
            for r in KeywordSearchEngine(reloaded).search("Smith XML")
        ]
        assert first == second

    def test_json_file_round_trip_preserves_experiments(self, tmp_path):
        from repro.relational.io import dump_json, load_json
        from repro.experiments.tables import table2

        path = tmp_path / "company.json"
        dump_json(build_company_database(), path)
        engine = KeywordSearchEngine(load_json(path))
        rows = table2(engine)
        assert len(rows) == 9


class TestErRelationalRoundTrips:
    def test_company_er_to_relational_to_er(self):
        er = build_company_er_schema()
        mapped = map_er_to_relational(er)
        recovered = reverse_engineer(mapped.schema)
        assert len(recovered.er_schema.relationships) == len(er.relationships)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_er_round_trip_preserves_cardinality_multiset(self, seed):
        er = random_schema(entities=6, extra_relationships=2, seed=seed)
        mapped = map_er_to_relational(er)
        recovered = reverse_engineer(mapped.schema)
        original = sorted(str(r.cardinality) for r in er.relationships)
        regained = sorted(
            str(r.cardinality) for r in recovered.er_schema.relationships
        )
        assert original == regained

    @pytest.mark.parametrize("seed", [5, 6])
    def test_instantiated_random_schema_is_searchable(self, seed):
        er = random_schema(entities=5, extra_relationships=1, seed=seed)
        database, __ = instantiate_er(er, per_entity=4, seed=seed)
        engine = KeywordSearchEngine(database)
        results = engine.search("instance")
        assert results  # every generated description contains "instance"


class TestPlannerDrivenSearch:
    def test_suggested_limits_find_all_paper_connections(self):
        """End to end: analyzer-planned limits drive the engine."""
        from repro.core.engine import KeywordSearchEngine
        from repro.core.schema_analysis import analyze_relational_schema

        database = build_company_database()
        engine = KeywordSearchEngine(database)
        analyzer = analyze_relational_schema(database.schema, max_length=3)
        matches = engine.match("XML Smith")
        limits = analyzer.suggest_limits(
            {t.relation for t in matches[0].tuple_ids},
            {t.relation for t in matches[1].tuple_ids},
        )
        results = engine.search("XML Smith", limits=limits)
        rendered = {r.answer.render() for r in results}
        assert {
            "d1(XML) – e1(Smith)",
            "p1(XML) – w_f1 – e1(Smith)",
            "p1(XML) – d1(XML) – e1(Smith)",
            "d1(XML) – p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – e2(Smith)",
            "p2(XML) – d2(XML) – e2(Smith)",
            "d2(XML) – p3 – w_f2 – e2(Smith)",
        } <= rendered


class TestConsistencyAcrossViews:
    def test_data_graph_edge_count_matches_references(self):
        database = build_company_database()
        engine = KeywordSearchEngine(database)
        reference_count = 0
        for fk in database.schema.foreign_keys:
            for record in database.tuples(fk.source):
                if database.referenced_tuple(record, fk) is not None:
                    reference_count += 1
        assert engine.data_graph.number_of_edges() == reference_count

    def test_index_agrees_with_direct_scan(self):
        database = build_company_database()
        engine = KeywordSearchEngine(database)
        from repro.relational.index import tokenize

        scanned = set()
        for record in database.all_tuples():
            for value in record.values.values():
                if value is not None and "xml" in tokenize(str(value)):
                    scanned.add(record.tid)
                    break
        assert set(engine.index.matching_tuples("xml")) == scanned
