"""Agreement and divergence between the engine and the baselines."""

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.discover import find_mtjnts, is_mtjnt
from repro.core.connections import Connection
from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections
from repro.datasets.company import build_company_database
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant


@pytest.fixture(scope="module")
def company_engine():
    return KeywordSearchEngine(build_company_database())


class TestMtjntsAreASubsetOfConnections:
    def test_on_company(self, company_engine):
        matches = match_keywords(company_engine.index, ("XML", "Smith"))
        connection_sets = {
            frozenset(answer.tuple_ids())
            for answer in find_connections(
                company_engine.data_graph,
                matches,
                SearchLimits(max_rdb_length=4),
            )
            if isinstance(answer, Connection)
        }
        mtjnt_path_sets = {
            members
            for members in find_mtjnts(
                company_engine.data_graph, matches, SearchLimits(max_tuples=5)
            )
        }
        # Every path-shaped MTJNT is also found by connection enumeration.
        assert mtjnt_path_sets <= connection_sets

    def test_on_synthetic(self):
        database = generate_company_like(
            SyntheticConfig(departments=2, employees_per_department=3, seed=3)
        )
        plant(database, "alpha", "DEPARTMENT", "D_DESCRIPTION", 1, seed=1)
        plant(database, "beta", "EMPLOYEE", "L_NAME", 2, seed=2)
        engine = KeywordSearchEngine(database)
        matches = match_keywords(engine.index, ("alpha", "beta"))
        for members in find_mtjnts(
            engine.data_graph, matches, SearchLimits(max_tuples=4)
        ):
            assert is_mtjnt(engine.data_graph, members, matches)


class TestBanksAgreesOnTopAnswer:
    def test_top_banks_answer_is_a_close_connection(self, company_engine):
        matches = match_keywords(company_engine.index, ("XML", "Smith"))
        best = BanksSearch(company_engine.data_graph).search(matches, top_k=1)[0]
        # The cheapest BANKS tree is one of the direct dept-employee pairs -
        # exactly the closeness ranker's top picks.
        engine_best = company_engine.search(
            "XML Smith", limits=SearchLimits(max_rdb_length=3), top_k=3
        )
        engine_sets = {
            frozenset(r.answer.tuple_ids()) for r in engine_best
        }
        assert frozenset(best.tuple_ids()) in engine_sets

    def test_banks_never_misses_the_mtjnts_tuples(self, company_engine):
        matches = match_keywords(company_engine.index, ("XML", "Smith"))
        banks_sets = {
            frozenset(a.tuple_ids())
            for a in BanksSearch(company_engine.data_graph).search(
                matches, top_k=50, max_distance=12.0
            )
        }
        mtjnts = set(
            find_mtjnts(
                company_engine.data_graph, matches, SearchLimits(max_tuples=5)
            )
        )
        assert mtjnts <= banks_sets


class TestLooseConnectionsExceedMtjnts:
    """The paper's point: MTJNT semantics returns strictly less."""

    def test_engine_returns_more_than_mtjnt(self, company_engine):
        matches = match_keywords(company_engine.index, ("XML", "Smith"))
        connections = [
            answer
            for answer in find_connections(
                company_engine.data_graph,
                matches,
                SearchLimits(max_rdb_length=3),
            )
            if isinstance(answer, Connection)
        ]
        mtjnts = find_mtjnts(
            company_engine.data_graph, matches, SearchLimits(max_tuples=5)
        )
        assert len(connections) > len(mtjnts)

    def test_every_lost_connection_is_loose_or_redundant(self, company_engine):
        matches = match_keywords(company_engine.index, ("XML", "Smith"))
        mtjnt_sets = set(
            find_mtjnts(
                company_engine.data_graph, matches, SearchLimits(max_tuples=5)
            )
        )
        for answer in find_connections(
            company_engine.data_graph, matches, SearchLimits(max_rdb_length=3)
        ):
            if not isinstance(answer, Connection):
                continue
            members = frozenset(answer.tuple_ids())
            if members not in mtjnt_sets:
                # Lost answers contain a smaller total joining network.
                smaller_exists = any(m < members for m in mtjnt_sets)
                assert smaller_exists
