"""End-to-end walkthrough of the full paper on the public API only."""

import pytest

from repro import (
    ClosenessRanker,
    KeywordSearchEngine,
    RdbLengthRanker,
    SearchLimits,
    build_company_database,
)
from repro.baselines.discover import find_mtjnts
from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection


@pytest.fixture(scope="module")
def engine():
    return KeywordSearchEngine(build_company_database())


class TestSection3Walkthrough:
    """Follow the paper's §3 narrative end to end."""

    def test_keyword_matching_stage(self, engine):
        smith, xml = engine.match("Smith XML")
        assert len(smith) == 2
        assert len(xml) == 4

    def test_connection_enumeration_stage(self, engine):
        results = engine.search("XML Smith", limits=SearchLimits(max_rdb_length=3))
        connections = [
            r.answer for r in results if isinstance(r.answer, Connection)
        ]
        assert len(connections) == 7

    def test_ranking_stage_rdb(self, engine):
        results = engine.search(
            "XML Smith",
            ranker=RdbLengthRanker(),
            limits=SearchLimits(max_rdb_length=3),
        )
        # Best: the two direct department-employee connections.
        assert {results[0].answer.render(), results[1].answer.render()} == {
            "d1(XML) – e1(Smith)",
            "d2(XML) – e2(Smith)",
        }

    def test_ranking_stage_closeness(self, engine):
        results = engine.search(
            "XML Smith",
            ranker=ClosenessRanker(),
            limits=SearchLimits(max_rdb_length=3),
        )
        top3 = {r.answer.render() for r in results[:3]}
        assert top3 == {
            "d1(XML) – e1(Smith)",
            "p1(XML) – w_f1 – e1(Smith)",
            "d2(XML) – e2(Smith)",
        }
        worst2 = {r.answer.render() for r in results[-2:]}
        assert worst2 == {
            "p1(XML) – d1(XML) – e1(Smith)",
            "p2(XML) – d2(XML) – e2(Smith)",
        }

    def test_instance_level_stage(self, engine):
        results = engine.search("XML Smith", limits=SearchLimits(max_rdb_length=3))
        by_render = {
            r.answer.render(): r.answer
            for r in results
            if isinstance(r.answer, Connection)
        }
        # John Smith's loose connections are corroborated, Barbara's via p2
        # is not.
        assert is_instance_close(by_render["p1(XML) – d1(XML) – e1(Smith)"])
        assert is_instance_close(by_render["d1(XML) – p1(XML) – w_f1 – e1(Smith)"])
        assert not is_instance_close(by_render["p2(XML) – d2(XML) – e2(Smith)"])

    def test_mtjnt_stage(self, engine):
        matches = engine.match("XML Smith")
        mtjnts = find_mtjnts(engine.data_graph, matches, SearchLimits(max_tuples=5))
        assert len(mtjnts) == 3

    def test_explanations_render(self, engine):
        results = engine.search("XML Smith", limits=SearchLimits(max_rdb_length=3))
        for result in results:
            text = engine.explain(result)
            assert result.answer.render() in text


class TestIntroExample:
    """§1/§2: employee-department associations come in two ways."""

    def test_two_ways_from_employee_to_department(self, engine):
        from repro.er.paths import enumerate_paths
        from repro.datasets.company import build_company_er_schema

        schema = build_company_er_schema()
        paths = list(enumerate_paths(schema, "EMPLOYEE", "DEPARTMENT", 2))
        assert len(paths) == 2
        lengths = sorted(path.length for path in paths)
        assert lengths == [1, 2]

    def test_longer_path_contains_more_information(self, engine):
        # The 2-step path visits the project; the 1-step path does not.
        from repro.er.paths import enumerate_paths
        from repro.datasets.company import build_company_er_schema

        schema = build_company_er_schema()
        longer = max(
            enumerate_paths(schema, "EMPLOYEE", "DEPARTMENT", 2),
            key=lambda p: p.length,
        )
        assert "PROJECT" in longer.entities()
